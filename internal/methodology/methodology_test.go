package methodology

import (
	"math"
	"testing"

	"pbsim/internal/pb"
)

// syntheticFactors builds n generic factors.
func syntheticFactors(n int) []pb.Factor {
	fs := make([]pb.Factor, n)
	for i := range fs {
		fs[i] = pb.Factor{Name: string(rune('A' + i))}
	}
	return fs
}

// weightedResponse returns a response with known factor weights and an
// optional interaction between factors 0 and 1.
func weightedResponse(weights []float64, interact float64) pb.Response {
	return func(levels []pb.Level) float64 {
		y := 1000.0
		for i, w := range weights {
			y += w * float64(levels[i])
		}
		y += interact * float64(levels[0]) * float64(levels[1])
		return y
	}
}

func TestScreenSeparatesCriticalFactors(t *testing.T) {
	weights := []float64{100, 80, 60, 1, 0.5, 0.2, 0}
	factors := syntheticFactors(len(weights))
	resp := weightedResponse(weights, 0)
	scr, err := Screen(factors, []string{"b1", "b2"}, []pb.Response{resp, resp}, pb.Options{Foldover: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scr.Critical) == 0 {
		t.Fatal("no critical factors found")
	}
	// The gap heuristic may cut conservatively, but everything it
	// flags must come from the heavy factors, in significance order.
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, f := range scr.Critical {
		if !want[f] {
			t.Errorf("factor %d wrongly deemed critical", f)
		}
	}
	if scr.Critical[0] != 0 {
		t.Errorf("most critical factor = %d, want 0", scr.Critical[0])
	}
	// The zero-weight factors are never critical.
	for _, f := range scr.NonCritical {
		delete(want, f)
	}
	if len(scr.Critical)+len(scr.NonCritical) != scr.Suite.Design.Columns {
		t.Error("screening lost factors")
	}
}

func TestScreenMaxCriticalBound(t *testing.T) {
	weights := []float64{100, 80, 60, 40}
	factors := syntheticFactors(len(weights))
	resp := weightedResponse(weights, 0)
	scr, err := Screen(factors, []string{"b"}, []pb.Response{resp}, pb.Options{Foldover: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(scr.Critical) > 2 {
		t.Errorf("bound ignored: %v", scr.Critical)
	}
}

func TestSensitivityAnalysisRecoversEffects(t *testing.T) {
	weights := []float64{50, 30, 0, 0, 0}
	resp := weightedResponse(weights, 10)
	sens, err := SensitivityAnalysis(5, []int{0, 1}, resp, pb.Low)
	if err != nil {
		t.Fatal(err)
	}
	main := sens.ANOVA.MainEffects()
	if math.Abs(main[0].Effect-100) > 1e-9 { // high-low change = 2w
		t.Errorf("effect A = %g, want 100", main[0].Effect)
	}
	if math.Abs(main[1].Effect-60) > 1e-9 {
		t.Errorf("effect B = %g, want 60", main[1].Effect)
	}
	// The 0x1 interaction must be visible to the full factorial.
	share := sens.ANOVA.InteractionShare()
	if share <= 0 {
		t.Error("interaction share should be positive")
	}
	// SS decomposition: interaction effect = 2*10.
	found := false
	for _, term := range sens.ANOVA.Terms {
		if len(term.Factors) == 2 {
			if math.Abs(term.Effect-20) > 1e-9 {
				t.Errorf("interaction effect = %g, want 20", term.Effect)
			}
			found = true
		}
	}
	if !found {
		t.Error("interaction term missing")
	}
}

func TestSensitivityAnalysisValidation(t *testing.T) {
	resp := weightedResponse([]float64{1}, 0)
	if _, err := SensitivityAnalysis(5, nil, resp, pb.Low); err == nil {
		t.Error("empty critical list accepted")
	}
	if _, err := SensitivityAnalysis(5, []int{7}, resp, pb.Low); err == nil {
		t.Error("out-of-range index accepted")
	}
	big := make([]int, 13)
	if _, err := SensitivityAnalysis(20, big, resp, pb.Low); err == nil {
		t.Error("oversized factorial accepted")
	}
}

func TestClassify(t *testing.T) {
	// Two benchmarks sensitive to the same factor group, one to a
	// different one: expect two groups.
	weights1 := []float64{100, 90, 1, 1}
	weights2 := []float64{95, 85, 2, 1}
	weights3 := []float64{1, 2, 100, 90}
	factors := syntheticFactors(4)
	suite, err := pb.RunSuite(factors,
		[]string{"x1", "x2", "y"},
		[]pb.Response{weightedResponse(weights1, 0), weightedResponse(weights2, 0), weightedResponse(weights3, 0)},
		pb.Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}
	// x1 and x2 have identical rank vectors (distance 0); y differs.
	c, err := Classify(suite, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Groups) != 2 {
		t.Fatalf("groups = %v, want 2", c.Groups)
	}
	if len(c.Representatives) != 2 {
		t.Errorf("representatives = %v", c.Representatives)
	}
	if len(c.Groups[0]) != 2 {
		t.Errorf("first group should pair x1 and x2: %v", c.Groups)
	}
}

func TestCompareEnhancement(t *testing.T) {
	factors := syntheticFactors(3)
	before, err := pb.RunSuite(factors, []string{"b"},
		[]pb.Response{weightedResponse([]float64{100, 50, 10}, 0)}, pb.Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}
	// The "enhancement" removes most of factor 1's influence.
	after, err := pb.RunSuite(factors, []string{"b"},
		[]pb.Response{weightedResponse([]float64{100, 2, 10}, 0)}, pb.Options{Foldover: true})
	if err != nil {
		t.Fatal(err)
	}
	shifts, err := CompareEnhancement(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(shifts) != before.Design.Columns {
		t.Fatalf("%d shifts", len(shifts))
	}
	// Ordered by before-significance: factor 0 first.
	if shifts[0].Factor.Name != "A" || shifts[0].RankBefore != 1 {
		t.Errorf("first shift = %+v", shifts[0])
	}
	// Factor B lost significance: positive shift, worse rank after.
	var bShift EnhancementShift
	for _, s := range shifts {
		if s.Factor.Name == "B" {
			bShift = s
		}
	}
	if bShift.Shift <= 0 {
		t.Errorf("B should have lost significance: %+v", bShift)
	}
	if bShift.RankAfter <= bShift.RankBefore {
		t.Errorf("B rank should worsen: %+v", bShift)
	}
	big, err := BiggestShift(shifts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if big.Factor.Name != "B" {
		t.Errorf("biggest shift = %q, want B", big.Factor.Name)
	}
	// topN out of range falls back to all.
	if _, err := BiggestShift(shifts, 0); err != nil {
		t.Error(err)
	}
	if _, err := BiggestShift(nil, 1); err == nil {
		t.Error("empty shifts accepted")
	}
}

func TestCompareEnhancementMismatch(t *testing.T) {
	fa := syntheticFactors(3)
	fb := syntheticFactors(8)
	resp := weightedResponse([]float64{1, 1, 1}, 0)
	a, _ := pb.RunSuite(fa, []string{"b"}, []pb.Response{resp}, pb.Options{})
	b, _ := pb.RunSuite(fb, []string{"b"}, []pb.Response{resp}, pb.Options{})
	if _, err := CompareEnhancement(a, b); err == nil {
		t.Error("mismatched suites accepted")
	}
}
