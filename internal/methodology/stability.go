package methodology

import (
	"fmt"
	"sort"

	"pbsim/internal/pb"
)

// StabilityReport quantifies how robust a suite's sum-of-ranks
// ordering is to the benchmark selection, via leave-one-out
// (jackknife) resampling: a parameter whose position swings wildly
// when one benchmark is dropped owes its apparent significance to that
// single benchmark.
type StabilityReport struct {
	// Factors[i] describes factor i of the suite.
	Factors []FactorStability
}

// FactorStability summarizes one factor's position across the
// leave-one-out orderings.
type FactorStability struct {
	Factor pb.Factor
	// FullPosition is the 1-based position in the full-suite ordering.
	FullPosition int
	// MinPosition and MaxPosition bound the positions observed across
	// all leave-one-out orderings.
	MinPosition, MaxPosition int
	// Spread = MaxPosition - MinPosition; small spreads mean the
	// ordering does not hinge on any single benchmark.
	Spread int
}

// Jackknife computes the leave-one-out stability of a suite's
// ordering. It needs at least two benchmarks.
func Jackknife(suite *pb.Suite) (*StabilityReport, error) {
	nb := len(suite.RankRows)
	if nb < 2 {
		return nil, fmt.Errorf("methodology: jackknife needs >= 2 benchmarks, got %d", nb)
	}
	nf := len(suite.Sums)
	rep := &StabilityReport{Factors: make([]FactorStability, nf)}
	for pos, f := range suite.Order {
		rep.Factors[f] = FactorStability{
			Factor:       suite.Factors[f],
			FullPosition: pos + 1,
			MinPosition:  pos + 1,
			MaxPosition:  pos + 1,
		}
	}
	for drop := 0; drop < nb; drop++ {
		var rows [][]int
		for b, row := range suite.RankRows {
			if b != drop {
				rows = append(rows, row)
			}
		}
		sums := pb.SumOfRanks(rows)
		order := pb.OrderBySum(sums)
		for pos, f := range order {
			fs := &rep.Factors[f]
			if pos+1 < fs.MinPosition {
				fs.MinPosition = pos + 1
			}
			if pos+1 > fs.MaxPosition {
				fs.MaxPosition = pos + 1
			}
		}
	}
	for i := range rep.Factors {
		rep.Factors[i].Spread = rep.Factors[i].MaxPosition - rep.Factors[i].MinPosition
	}
	return rep, nil
}

// TopKStable reports whether the identity of the top k factors is
// invariant across all leave-one-out orderings: every factor whose
// full-suite position is within k stays within k + slack.
func (r *StabilityReport) TopKStable(k, slack int) bool {
	for _, fs := range r.Factors {
		if fs.FullPosition <= k && fs.MaxPosition > k+slack {
			return false
		}
	}
	return true
}

// ByFullPosition returns the factor stabilities sorted by the
// full-suite ordering.
func (r *StabilityReport) ByFullPosition() []FactorStability {
	out := make([]FactorStability, len(r.Factors))
	copy(out, r.Factors)
	sort.Slice(out, func(a, b int) bool { return out[a].FullPosition < out[b].FullPosition })
	return out
}
