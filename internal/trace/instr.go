package trace

// Class identifies the functional-unit class and pipeline treatment of
// an instruction.
type Class uint8

// Instruction classes. The compute classes map one-to-one onto the
// functional-unit pools of Tables 6-7 of the paper.
const (
	IntALU Class = iota // add/sub/logic/compare
	IntMult
	IntDiv
	FPAdd // "FP ALU" operations
	FPMult
	FPDiv
	FPSqrt
	Load
	Store
	Branch // conditional branch
	Call   // direct call (pushes the return-address stack)
	Return // return (pops the return-address stack)
	NumClasses
)

// String names the class for statistics output.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "IntALU"
	case IntMult:
		return "IntMult"
	case IntDiv:
		return "IntDiv"
	case FPAdd:
		return "FPAdd"
	case FPMult:
		return "FPMult"
	case FPDiv:
		return "FPDiv"
	case FPSqrt:
		return "FPSqrt"
	case Load:
		return "Load"
	case Store:
		return "Store"
	case Branch:
		return "Branch"
	case Call:
		return "Call"
	case Return:
		return "Return"
	default:
		return "Class(?)"
	}
}

// IsMem reports whether the class occupies a load-store queue entry
// and a memory port.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsControl reports whether the class is a control-flow instruction.
func (c Class) IsControl() bool { return c == Branch || c == Call || c == Return }

// IsCompute reports whether the class executes on an arithmetic
// functional unit (and is therefore eligible for instruction
// precomputation).
func (c Class) IsCompute() bool {
	switch c {
	case IntALU, IntMult, IntDiv, FPAdd, FPMult, FPDiv, FPSqrt:
		return true
	}
	return false
}

// Instr is one dynamic instruction of a synthetic stream.
type Instr struct {
	// PC is the instruction address (4-byte instructions).
	PC uint64
	// Class selects the functional unit / pipeline treatment.
	Class Class
	// Dep1 and Dep2 are register-dependency back-distances: this
	// instruction reads the results of the instructions Dep1 and Dep2
	// positions earlier in the stream (0 means no dependency).
	Dep1, Dep2 int32
	// Addr is the effective address of a Load or Store.
	Addr uint64
	// Taken is the actual outcome of a control instruction.
	Taken bool
	// Target is the actual target address of a taken control
	// instruction.
	Target uint64
	// CompID identifies a redundant computation: instructions with the
	// same nonzero CompID compute the same value from the same inputs,
	// the property instruction precomputation (Section 4.3) exploits.
	CompID uint32
}
