package trace

import (
	"fmt"
	"sync"
)

// Params statistically describes a synthetic workload. Every field is
// a program property, not a machine property: the same stream is
// replayed against every simulator configuration of an experiment.
type Params struct {
	// Seed selects the deterministic pseudo-random stream.
	Seed uint64

	// Mix holds relative weights for the non-control instruction
	// classes (IntALU..FPSqrt, Load, Store). Control instructions are
	// produced by the basic-block structure instead. Weights need not
	// sum to one.
	Mix [NumClasses]float64

	// NumBlocks is the number of static basic blocks; together with
	// AvgBlockLen it sets the hot-code footprint (4 bytes per
	// instruction), which determines I-cache and I-TLB stress.
	NumBlocks int
	// AvgBlockLen is the mean dynamic basic-block length in
	// instructions including the terminating control instruction, so
	// roughly 1/AvgBlockLen of instructions are branches.
	AvgBlockLen int
	// CallFraction is the probability that a block ends in a call
	// (and, symmetrically, that a block ends in a return), exercising
	// the return-address stack.
	CallFraction float64
	// PatternPeriod is the period of each static branch's repeating
	// taken/not-taken pattern. Short periods are learnable by a
	// two-level predictor.
	PatternPeriod int
	// Predictability is the fraction of static branches whose outcome
	// follows a deterministic periodic pattern (loop exits, regular
	// control flow) that a history-based predictor can learn. The
	// remaining branches are data-dependent: they follow their
	// dominant direction with probability BranchBias but carry
	// unlearnable per-instance noise.
	Predictability float64
	// FarJumpFrac is the fraction of static branches whose taken
	// target is uniform over the whole code rather than local. Far
	// jumps model phase changes and large-scale control flow; they
	// spread the instruction working set and stress the I-cache, BTB
	// and I-TLB.
	FarJumpFrac float64
	// BranchBias is the probability that a pattern bit equals the
	// branch's dominant direction. Real branches are heavily biased
	// (most are taken or not-taken more than 90% of the time), which
	// is what makes them predictable by two-bit counters; values near
	// 0.5 produce pattern-only branches that stress history-based
	// prediction. Zero selects the default of 0.9.
	BranchBias float64

	// WorkingSetBytes is the data footprint, determining D-cache, L2
	// and D-TLB stress.
	WorkingSetBytes uint64
	// TemporalFrac is the fraction of memory accesses that touch the
	// hot region (stack frames, hot globals): a skewed distribution
	// over the first min(WorkingSetBytes, 64 KB) of the data segment,
	// heavily concentrated near its base so that even a small data
	// cache captures most of it.
	TemporalFrac float64
	// SeqFrac is the fraction of memory accesses that walk
	// sequentially with the given stride (spatial locality). The
	// remaining accesses are uniform over the working set.
	SeqFrac float64
	// StrideBytes is the step of sequential accesses.
	StrideBytes uint64

	// MeanDepDist is the mean register-dependency back-distance in
	// instructions; short distances serialize execution and limit the
	// ILP the reorder buffer can extract.
	MeanDepDist float64

	// RedundantFrac is the fraction of compute instructions that carry
	// a redundant-computation identity, drawn Zipf-distributed over
	// NumCompIDs identities with exponent ZipfExponent. Instruction
	// precomputation captures the most frequent identities.
	RedundantFrac float64
	NumCompIDs    int
	ZipfExponent  float64
}

// Validate reports the first structural problem with the parameters.
func (p *Params) Validate() error {
	if p.NumBlocks < 2 {
		return fmt.Errorf("trace: NumBlocks = %d, need >= 2", p.NumBlocks)
	}
	if p.AvgBlockLen < 2 {
		return fmt.Errorf("trace: AvgBlockLen = %d, need >= 2", p.AvgBlockLen)
	}
	if p.WorkingSetBytes < 64 {
		return fmt.Errorf("trace: WorkingSetBytes = %d, need >= 64", p.WorkingSetBytes)
	}
	if p.PatternPeriod < 1 {
		return fmt.Errorf("trace: PatternPeriod = %d, need >= 1", p.PatternPeriod)
	}
	total := 0.0
	for c := IntALU; c <= Store; c++ {
		if p.Mix[c] < 0 {
			return fmt.Errorf("trace: negative mix weight for %s", c)
		}
		total += p.Mix[c]
	}
	if total <= 0 {
		return fmt.Errorf("trace: instruction mix has no positive weights")
	}
	return nil
}

// CodeFootprintBytes estimates the static code size implied by the
// block structure.
func (p *Params) CodeFootprintBytes() uint64 {
	return uint64(p.NumBlocks) * uint64(p.AvgBlockLen) * 4
}

// terminator kinds for static blocks.
const (
	termBranch = iota
	termCall
	termReturn
)

// block is one static basic block.
type block struct {
	startPC  uint64
	bodyLen  int // instructions before the terminator
	term     int
	target   int    // taken-successor block index (branch/call)
	pattern  uint64 // branch taken/not-taken pattern bits (period <= 64)
	period   int
	noisy    bool // data-dependent branch: outcomes are not learnable
	dominant bool // the branch's dominant direction
}

// CodeBase and DataBase separate instruction and data address spaces.
const (
	CodeBase uint64 = 0x0040_0000
	DataBase uint64 = 1 << 32
)

// patternDeviation is the per-instance probability that a pattern
// branch deviates from its pattern (a data-dependent loop exit).
const patternDeviation = 0.01

// maxCallDepth bounds the simulated call stack.
const maxCallDepth = 64

// program is the immutable static structure compiled from one Params
// value: the basic-block graph, the body-class sampling CDF and the
// Zipf frequency table. A program is shared by every Generator built
// from the same parameters — a PB suite replays the identical workload
// once per design row, so the static structure (which costs tens of
// thousands of RNG draws to build) is compiled once per workload
// instead of once per run.
type program struct {
	p      Params // validated and normalized
	blocks []block
	// class sampling: cumulative weights over the body classes.
	classCDF [9]float64
	zipfCDF  []float64
}

// programs memoizes compiled static structures by their raw Params
// value (Params is comparable: scalars and one array). Entries are
// immutable once stored and the cache holds one entry per distinct
// workload parameterization, so it stays bounded by the suite size.
var programs sync.Map // Params -> *program

// Generator produces the instruction stream. It is not safe for
// concurrent use; create one generator per simulation run (or Reset
// one between runs).
type Generator struct {
	prog *program
	rng  *RNG
	zipf *Zipf

	cur       int // current block
	pos       int // next body position within the block
	visits    []uint32
	callStack []int // return-to block indices
	seq       int64 // instructions emitted so far

	seqAddr uint64
}

// zipfSeedMix decorrelates the redundancy-identity stream from the
// main sampling stream.
const zipfSeedMix = 0xa5a5_5a5a_1234_5678

// NewGenerator builds (or reuses) the static code structure for the
// parameters and returns a generator positioned at the first
// instruction.
func NewGenerator(p Params) (*Generator, error) {
	prog, err := compile(p)
	if err != nil {
		return nil, err
	}
	return prog.newGenerator(), nil
}

// compile returns the memoized program for p, building and caching it
// on first use.
func compile(p Params) (*program, error) {
	if cached, ok := programs.Load(p); ok {
		return cached.(*program), nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	key := p
	if p.PatternPeriod > 64 {
		p.PatternPeriod = 64
	}
	if p.NumCompIDs < 1 {
		p.NumCompIDs = 1
	}
	if p.StrideBytes == 0 {
		p.StrideBytes = 8
	}
	if p.BranchBias == 0 { //pbcheck:ignore floateq zero-value sentinel for an unset config field, exact by construction
		p.BranchBias = 0.9
	}
	prog := &program{p: p, zipfCDF: zipfCDF(p.NumCompIDs, p.ZipfExponent)}

	// Static structure comes from its own RNG so that runtime
	// sampling does not perturb it.
	srng := NewRNG(p.Seed ^ 0x5bd1_e995_0bad_cafe)
	prog.blocks = make([]block, p.NumBlocks)
	// Hot function set: call sites target a bounded set of function
	// entry blocks, skewed toward the hottest few, the way real call
	// graphs concentrate on a handful of hot callees. The set grows
	// with the code size so large programs still spread their
	// instruction working set.
	numFuncs := p.NumBlocks / 64
	if numFuncs < 4 {
		numFuncs = 4
	}
	funcEntries := make([]int, numFuncs)
	for i := range funcEntries {
		funcEntries[i] = srng.Intn(p.NumBlocks)
	}
	pc := CodeBase
	for i := range prog.blocks {
		b := &prog.blocks[i]
		b.startPC = pc
		// Block lengths vary around the mean but keep at least one
		// body instruction.
		bodyMean := p.AvgBlockLen - 1
		b.bodyLen = 1 + srng.Geometric(float64(bodyMean))
		if b.bodyLen > 4*p.AvgBlockLen {
			b.bodyLen = 4 * p.AvgBlockLen
		}
		pc += uint64(b.bodyLen+1) * 4
		r := srng.Float64()
		switch {
		case r < p.CallFraction:
			b.term = termCall
		case r < 2*p.CallFraction:
			b.term = termReturn
		default:
			b.term = termBranch
		}
		if b.term == termCall {
			// Each call site targets one hot function, preferring the
			// hottest.
			b.target = funcEntries[(srng.Geometric(3)-1)%numFuncs]
		} else if srng.Float64() < p.FarJumpFrac {
			// Phase-change jumps go anywhere in the code.
			b.target = srng.Intn(p.NumBlocks)
		} else {
			// Branch targets are local (loops and nearby control
			// flow): the walk stays in a drifting neighborhood, giving
			// the branch-site and instruction working sets the phase
			// locality real programs have. The neighborhood width
			// scales with the code size so that large-footprint
			// programs keep an instantaneous footprint that stresses
			// small instruction caches.
			var offset int
			if srng.Float64() < 0.55 {
				// Backward branch: a tight loop over a few blocks.
				// Loop branches dominate dynamic execution (they are
				// mostly taken and re-execute their bodies), which
				// concentrates the hot branch-site set the way real
				// programs do.
				offset = -(1 + srng.Geometric(4))
			} else {
				// Forward branch: skips and if/else chains; the reach
				// scales with the code size so large programs spread
				// their instruction working set.
				spread := float64(p.NumBlocks) / 12
				if spread < 8 {
					spread = 8
				} else if spread > 64 {
					spread = 64
				}
				offset = 1 + srng.Geometric(spread)
			}
			t := (i + offset) % p.NumBlocks
			if t < 0 {
				t += p.NumBlocks
			}
			b.target = t
		}
		b.period = p.PatternPeriod
		b.noisy = srng.Float64() >= p.Predictability
		// Backward branches are loop branches and lean heavily toward
		// taken, so the walk re-executes the loop body many times
		// (giving the predictor, BTB and I-cache the reuse real loops
		// provide); forward branches lean not-taken.
		if b.term == termBranch && b.target <= i {
			b.dominant = srng.Float64() < 0.85
		} else {
			b.dominant = srng.Float64() < 0.25
		}
		// Pattern bits lean toward the dominant direction, like real
		// branches; the off-dominant bits form a periodic pattern a
		// history-based predictor can learn.
		for bit := 0; bit < 64; bit++ {
			v := b.dominant
			if srng.Float64() >= p.BranchBias {
				v = !b.dominant
			}
			if v {
				b.pattern |= 1 << uint(bit)
			}
		}
	}
	// Cumulative mix over body classes IntALU..Store.
	sum := 0.0
	for c := IntALU; c <= Store; c++ {
		sum += p.Mix[c]
		prog.classCDF[c] = sum
	}
	for c := IntALU; c <= Store; c++ {
		prog.classCDF[c] /= sum
	}
	// Two goroutines compiling the same Params race benignly: both
	// build identical programs and the first store wins.
	actual, _ := programs.LoadOrStore(key, prog)
	return actual.(*program), nil
}

// newGenerator positions a fresh dynamic state at the program's first
// instruction.
func (pr *program) newGenerator() *Generator {
	return &Generator{
		prog:    pr,
		rng:     NewRNG(pr.p.Seed),
		zipf:    &Zipf{cdf: pr.zipfCDF, rng: NewRNG(pr.p.Seed ^ zipfSeedMix)},
		visits:  make([]uint32, len(pr.blocks)),
		seqAddr: DataBase,
	}
}

// Reset rewinds the generator to the first instruction of a fresh
// stream: the subsequent sequence of instructions is bit-identical to
// that of a newly constructed generator with the same parameters. It
// lets a worker reuse one generator's allocations across many
// simulation runs.
func (g *Generator) Reset() {
	g.rng.state = g.prog.p.Seed
	g.zipf.rng.state = g.prog.p.Seed ^ zipfSeedMix
	g.cur, g.pos, g.seq = 0, 0, 0
	for i := range g.visits {
		g.visits[i] = 0
	}
	g.callStack = g.callStack[:0]
	g.seqAddr = DataBase
}

// Params returns the generator's (validated, normalized) parameters.
func (g *Generator) Params() Params { return g.prog.p }

// Emitted returns the number of instructions generated so far.
func (g *Generator) Emitted() int64 { return g.seq }

// Next produces the next dynamic instruction. The stream is infinite;
// the caller decides how many instructions to simulate.
//
//pbcheck:hotpath
func (g *Generator) Next() Instr {
	b := &g.prog.blocks[g.cur]
	var in Instr
	if g.pos < b.bodyLen {
		in = g.bodyInstr(b)
		g.pos++
	} else {
		in = g.controlInstr(b)
		g.pos = 0
	}
	g.seq++
	return in
}

// bodyInstr emits one non-control instruction of the current block.
//
//pbcheck:hotpath
func (g *Generator) bodyInstr(b *block) Instr {
	in := Instr{PC: b.startPC + uint64(g.pos)*4}
	u := g.rng.Float64()
	c := IntALU
	for c < Store && u > g.prog.classCDF[c] {
		c++
	}
	in.Class = c
	in.Dep1 = g.depDistance()
	if g.rng.Float64() < 0.5 {
		in.Dep2 = g.depDistance()
	}
	if c.IsMem() {
		in.Addr = g.memAddress()
	}
	if c.IsCompute() && g.rng.Float64() < g.prog.p.RedundantFrac {
		in.CompID = uint32(g.zipf.Next())
	}
	return in
}

// controlInstr emits the block terminator and advances to the
// successor block.
//
//pbcheck:hotpath
func (g *Generator) controlInstr(b *block) Instr {
	in := Instr{PC: b.startPC + uint64(b.bodyLen)*4}
	in.Dep1 = g.depDistance()
	blocks := g.prog.blocks
	next := g.cur + 1
	if next >= len(blocks) {
		next = 0
	}
	switch {
	case b.term == termCall && len(g.callStack) < maxCallDepth:
		in.Class = Call
		in.Taken = true
		in.Target = blocks[b.target].startPC
		// Addr carries the return address (the call's fall-through
		// block) so the simulator's return-address stack can push the
		// exact value the matching Return will jump to.
		in.Addr = blocks[next].startPC
		g.callStack = append(g.callStack, next)
		next = b.target
	case b.term == termReturn && len(g.callStack) > 0:
		in.Class = Return
		in.Taken = true
		retTo := g.callStack[len(g.callStack)-1]
		g.callStack = g.callStack[:len(g.callStack)-1]
		in.Target = blocks[retTo].startPC
		next = retTo
	default:
		in.Class = Branch
		var taken bool
		if b.noisy {
			// Data-dependent branch: dominant direction with
			// per-instance noise no predictor can learn.
			taken = b.dominant
			if g.rng.Float64() >= g.prog.p.BranchBias {
				taken = !taken
			}
		} else {
			// Regular control flow: a periodic pattern with a small
			// per-instance deviation (data-dependent loop exits).
			// The deviation also keeps the block walk ergodic: without
			// it, the walk could fall into a closed deterministic
			// orbit and stop exploring the code and data space.
			v := g.visits[g.cur]
			g.visits[g.cur] = v + 1
			taken = b.pattern>>(v%uint32(b.period))&1 == 1
			if g.rng.Float64() < patternDeviation {
				taken = !taken
			}
		}
		in.Taken = taken
		if taken {
			in.Target = blocks[b.target].startPC
			next = b.target
		}
	}
	g.cur = next
	return in
}

// depDistance samples a register-dependency back-distance, clamped to
// the instructions actually emitted.
//
//pbcheck:hotpath
func (g *Generator) depDistance() int32 {
	d := int64(g.rng.Geometric(g.prog.p.MeanDepDist))
	if d > 64 {
		d = 64
	}
	if d > g.seq {
		d = g.seq
	}
	return int32(d)
}

// hotRegionBytes bounds the hot (stack-like) data region.
const hotRegionBytes = 64 << 10

// memAddress samples an effective address according to the locality
// model.
//
//pbcheck:hotpath
func (g *Generator) memAddress() uint64 {
	p := &g.prog.p
	var addr uint64
	u := g.rng.Float64()
	switch {
	case u < p.TemporalFrac:
		// Hot region with a heavy skew toward the base: u^8 puts
		// about 70% of these accesses in the first 4 KB of a 64 KB
		// region, so small caches capture most but not all of them.
		hot := p.WorkingSetBytes
		if hot > hotRegionBytes {
			hot = hotRegionBytes
		}
		v := g.rng.Float64()
		v = v * v // v^2
		v = v * v // v^4
		v = v * v // v^8
		addr = DataBase + uint64(v*float64(hot))&^7
	case u < p.TemporalFrac+p.SeqFrac:
		g.seqAddr += p.StrideBytes
		if g.seqAddr >= DataBase+p.WorkingSetBytes {
			g.seqAddr = DataBase
		}
		addr = g.seqAddr
	default:
		addr = DataBase + (g.rng.Uint64()%p.WorkingSetBytes)&^7
	}
	return addr
}
