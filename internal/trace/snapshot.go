package trace

import "fmt"

// This file gives the generator the two capabilities sampled
// simulation needs: fast-forwarding over unmeasured gaps (Skip) and
// re-entering the stream at a recorded position without replaying the
// prefix (Snapshot/Restore). A sampled run measures a handful of
// scattered regions per configuration; restoring a per-region snapshot
// makes each measurement O(region) instead of O(stream position).

// Snapshot captures a generator's complete dynamic state at one stream
// position. It is immutable once taken and may be restored into any
// generator built from the same parameters, any number of times, from
// any goroutine holding the target generator.
type Snapshot struct {
	params    Params
	rngState  uint64
	zipfState uint64
	cur, pos  int
	seq       int64
	seqAddr   uint64
	visits    []uint32
	callStack []int
}

// Pos returns the stream position the snapshot was taken at: the
// number of instructions emitted before it.
func (s *Snapshot) Pos() int64 { return s.seq }

// Snapshot copies the generator's dynamic state. The generator keeps
// producing instructions unaffected.
func (g *Generator) Snapshot() Snapshot {
	s := Snapshot{
		params:    g.prog.p,
		rngState:  g.rng.state,
		zipfState: g.zipf.rng.state,
		cur:       g.cur,
		pos:       g.pos,
		seq:       g.seq,
		seqAddr:   g.seqAddr,
		visits:    make([]uint32, len(g.visits)),
		callStack: append([]int(nil), g.callStack...),
	}
	copy(s.visits, g.visits)
	return s
}

// Restore rewinds (or fast-forwards) the generator to a snapshot: the
// subsequent instruction sequence is bit-identical to the one the
// snapshotted generator produced from that position. The snapshot must
// come from a generator with identical parameters — equal Params imply
// the identical compiled program, so the dynamic state lines up.
func (g *Generator) Restore(s Snapshot) error {
	if g.prog.p != s.params {
		return fmt.Errorf("trace: snapshot is from a different workload parameterization")
	}
	g.rng.state = s.rngState
	g.zipf.rng.state = s.zipfState
	g.cur, g.pos = s.cur, s.pos
	g.seq = s.seq
	g.seqAddr = s.seqAddr
	copy(g.visits, s.visits)
	g.callStack = append(g.callStack[:0], s.callStack...)
	return nil
}

// Skip fast-forwards the stream past n instructions without handing
// them to a consumer: the functional gap walk between detail-simulated
// regions. Skipping n instructions leaves the generator in exactly the
// state n Next calls would.
//
//pbcheck:hotpath
func (g *Generator) Skip(n int64) {
	for i := int64(0); i < n; i++ {
		g.Next()
	}
}
