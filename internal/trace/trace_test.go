package trace

import (
	"math"
	"testing"
	"testing/quick"
)

// testParams returns a small, valid parameter set.
func testParams(seed uint64) Params {
	p := Params{
		Seed:            seed,
		NumBlocks:       50,
		AvgBlockLen:     6,
		CallFraction:    0.1,
		PatternPeriod:   8,
		Predictability:  0.9,
		WorkingSetBytes: 1 << 16,
		TemporalFrac:    0.4,
		SeqFrac:         0.3,
		StrideBytes:     8,
		MeanDepDist:     4,
		RedundantFrac:   0.2,
		NumCompIDs:      256,
		ZipfExponent:    1.5,
	}
	p.Mix[IntALU] = 0.5
	p.Mix[IntMult] = 0.03
	p.Mix[IntDiv] = 0.01
	p.Mix[FPAdd] = 0.05
	p.Mix[FPMult] = 0.02
	p.Mix[FPDiv] = 0.005
	p.Mix[FPSqrt] = 0.002
	p.Mix[Load] = 0.25
	p.Mix[Store] = 0.12
	return p
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
		if n := r.Intn(17); n < 0 || n >= 17 {
			t.Fatalf("Intn(17) = %d", n)
		}
		if g := r.Geometric(3); g < 1 || g > 1024 {
			t.Fatalf("Geometric = %d", g)
		}
	}
	if g := r.Geometric(0.5); g != 1 {
		t.Errorf("Geometric(mean<=1) = %d, want 1", g)
	}
}

func TestGeometricMeanApprox(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(6))
	}
	mean := sum / n
	if math.Abs(mean-6) > 0.2 {
		t.Errorf("geometric mean = %.3f, want ~6", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(3)
	z := NewZipf(r, 100, 1.5)
	counts := make([]int, 101)
	for i := 0; i < 100000; i++ {
		k := z.Next()
		if k < 1 || k > 100 {
			t.Fatalf("Zipf rank %d out of range", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] || counts[10] <= counts[50] {
		t.Errorf("Zipf counts not skewed: 1:%d 2:%d 10:%d 50:%d",
			counts[1], counts[2], counts[10], counts[50])
	}
	// Degenerate n handled.
	z1 := NewZipf(NewRNG(1), 0, 1)
	if k := z1.Next(); k != 1 {
		t.Errorf("Zipf(n<1) rank = %d", k)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(testParams(99))
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(testParams(99))
	for i := 0; i < 20000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a, b)
		}
	}
	if g1.Emitted() != 20000 {
		t.Errorf("Emitted = %d", g1.Emitted())
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	g1, _ := NewGenerator(testParams(1))
	g2, _ := NewGenerator(testParams(2))
	same := 0
	for i := 0; i < 1000; i++ {
		if g1.Next() == g2.Next() {
			same++
		}
	}
	if same > 900 {
		t.Errorf("different seeds produced %d/1000 identical instructions", same)
	}
}

func TestGeneratorStreamInvariants(t *testing.T) {
	p := testParams(5)
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	var nControl, nMem, nComp, nRedundant int
	callDepth := 0
	for i := int64(0); i < 50000; i++ {
		in := g.Next()
		if in.PC < CodeBase {
			t.Fatalf("PC %#x below code base", in.PC)
		}
		if in.Dep1 < 0 || int64(in.Dep1) > i || in.Dep1 > 64 {
			t.Fatalf("instr %d: Dep1 = %d", i, in.Dep1)
		}
		if in.Dep2 < 0 || int64(in.Dep2) > i || in.Dep2 > 64 {
			t.Fatalf("instr %d: Dep2 = %d", i, in.Dep2)
		}
		switch {
		case in.Class.IsControl():
			nControl++
			if in.Taken && in.Target == 0 {
				t.Fatalf("taken control instr with zero target: %+v", in)
			}
			if in.Class == Call {
				callDepth++
			}
			if in.Class == Return {
				callDepth--
				if callDepth < 0 {
					t.Fatal("return without matching call")
				}
			}
		case in.Class.IsMem():
			nMem++
			if in.Addr < DataBase || in.Addr >= DataBase+p.WorkingSetBytes+p.StrideBytes {
				t.Fatalf("memory address %#x outside working set", in.Addr)
			}
			if in.CompID != 0 {
				t.Fatalf("memory instruction carries CompID: %+v", in)
			}
		default:
			nComp++
			if in.CompID != 0 {
				nRedundant++
				if int(in.CompID) > p.NumCompIDs {
					t.Fatalf("CompID %d out of range", in.CompID)
				}
			}
		}
	}
	// Roughly 1/AvgBlockLen control instructions.
	ctrlFrac := float64(nControl) / 50000
	if ctrlFrac < 0.05 || ctrlFrac > 0.5 {
		t.Errorf("control fraction = %.3f, expected near 1/%d", ctrlFrac, p.AvgBlockLen)
	}
	if nMem == 0 || nComp == 0 || nRedundant == 0 {
		t.Errorf("degenerate stream: mem=%d comp=%d redundant=%d", nMem, nComp, nRedundant)
	}
	// Redundant fraction of compute instructions near the parameter.
	rf := float64(nRedundant) / float64(nComp)
	if math.Abs(rf-p.RedundantFrac) > 0.05 {
		t.Errorf("redundant fraction = %.3f, want ~%.2f", rf, p.RedundantFrac)
	}
}

func TestGeneratorBranchPredictabilityKnob(t *testing.T) {
	// With predictability 1.0 every branch follows its periodic
	// pattern except for the small per-instance deviation (the
	// data-dependent loop-exit noise that keeps the walk ergodic), so
	// a per-(branch, phase) oracle table must be nearly perfect.
	p := testParams(17)
	p.Predictability = 1.0
	p.CallFraction = 0
	g, _ := NewGenerator(p)
	type key struct {
		pc    uint64
		phase uint32
	}
	counts := map[key][2]int{}
	visit := map[uint64]uint32{}
	for i := 0; i < 30000; i++ {
		in := g.Next()
		if in.Class != Branch {
			continue
		}
		k := key{in.PC, visit[in.PC] % uint32(p.PatternPeriod)}
		visit[in.PC]++
		c := counts[k]
		if in.Taken {
			c[0]++
		} else {
			c[1]++
		}
		counts[k] = c
	}
	minority, total := 0, 0
	for _, c := range counts {
		total += c[0] + c[1]
		if c[0] < c[1] {
			minority += c[0]
		} else {
			minority += c[1]
		}
	}
	if total == 0 {
		t.Fatal("no branch observations")
	}
	if frac := float64(minority) / float64(total); frac > 0.03 {
		t.Errorf("pattern-branch deviation fraction = %.4f, want <= ~0.01", frac)
	}
}

func TestGeneratorWorkingSetKnob(t *testing.T) {
	small := testParams(23)
	small.WorkingSetBytes = 1 << 10
	big := testParams(23)
	big.WorkingSetBytes = 1 << 24
	gs, _ := NewGenerator(small)
	gb, _ := NewGenerator(big)
	unique := func(g *Generator) int {
		set := map[uint64]bool{}
		for i := 0; i < 30000; i++ {
			in := g.Next()
			if in.Class.IsMem() {
				set[in.Addr>>6] = true // 64B block granularity
			}
		}
		return len(set)
	}
	us, ub := unique(gs), unique(gb)
	if us*4 > ub {
		t.Errorf("working-set knob ineffective: small=%d blocks, big=%d blocks", us, ub)
	}
}

func TestParamsValidate(t *testing.T) {
	good := testParams(1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.NumBlocks = 1 },
		func(p *Params) { p.AvgBlockLen = 1 },
		func(p *Params) { p.WorkingSetBytes = 8 },
		func(p *Params) { p.PatternPeriod = 0 },
		func(p *Params) { p.Mix[Load] = -1 },
		func(p *Params) { p.Mix = [NumClasses]float64{} },
	}
	for i, mutate := range cases {
		p := testParams(1)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
		if _, err := NewGenerator(p); err == nil {
			t.Errorf("case %d: NewGenerator accepted invalid params", i)
		}
	}
}

func TestCodeFootprint(t *testing.T) {
	p := testParams(1)
	want := uint64(p.NumBlocks) * uint64(p.AvgBlockLen) * 4
	if got := p.CodeFootprintBytes(); got != want {
		t.Errorf("CodeFootprintBytes = %d, want %d", got, want)
	}
}

func TestClassPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || IntALU.IsMem() {
		t.Error("IsMem")
	}
	if !Branch.IsControl() || !Call.IsControl() || !Return.IsControl() || Load.IsControl() {
		t.Error("IsControl")
	}
	for _, c := range []Class{IntALU, IntMult, IntDiv, FPAdd, FPMult, FPDiv, FPSqrt} {
		if !c.IsCompute() {
			t.Errorf("%s should be compute", c)
		}
	}
	if Load.IsCompute() || Branch.IsCompute() {
		t.Error("IsCompute false positives")
	}
	for c := IntALU; c < NumClasses; c++ {
		if c.String() == "Class(?)" {
			t.Errorf("class %d missing name", c)
		}
	}
	if Class(200).String() != "Class(?)" {
		t.Error("unknown class name")
	}
}

func TestPropGeneratorRobustAcrossSeeds(t *testing.T) {
	f := func(seed uint64) bool {
		p := testParams(seed)
		g, err := NewGenerator(p)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			in := g.Next()
			if in.Class >= NumClasses {
				return false
			}
			if in.Class.IsMem() && in.Addr < DataBase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
