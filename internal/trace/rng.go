// Package trace generates deterministic synthetic instruction streams
// that stand in for the paper's SPEC 2000 / MinneSPEC workloads (see
// DESIGN.md, "Substitutions"). A stream is defined by statistical
// parameters -- instruction mix, basic-block structure, branch-pattern
// predictability, memory working set and locality, dependency
// distances, and redundant-computation frequency -- and is reproduced
// exactly from its seed, so every simulator configuration in a
// Plackett-Burman experiment observes the identical instruction
// sequence.
package trace

import "math"

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and
// deterministic across platforms, which the experiment methodology
// requires (every design row must see the same workload).
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
//
//pbcheck:hotpath
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
//
//pbcheck:hotpath
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
//
//pbcheck:hotpath
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Geometric returns a sample from a geometric distribution with the
// given mean (>= 1): the number of trials until first success, so the
// result is always >= 1.
//
//pbcheck:hotpath
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for r.Float64() > p && n < 1024 {
		n++
	}
	return n
}

// Zipf samples ranks 1..n with probability proportional to
// 1/rank^s using a precomputed cumulative table.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	return &Zipf{cdf: zipfCDF(n, s), rng: rng}
}

// zipfCDF precomputes the cumulative rank-probability table shared by
// every sampler with the same (n, s); the table is immutable, so
// program memoization can hand one copy to all generators.
func zipfCDF(n int, s float64) []float64 {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// Next returns a rank in [1, n]; rank 1 is the most frequent.
//
//pbcheck:hotpath
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
