package trace

import "testing"

func snapshotParams(seed uint64) Params {
	p := Params{
		Seed:            seed,
		NumBlocks:       64,
		AvgBlockLen:     6,
		CallFraction:    0.08,
		PatternPeriod:   6,
		Predictability:  0.8,
		FarJumpFrac:     0.05,
		WorkingSetBytes: 1 << 16,
		TemporalFrac:    0.5,
		SeqFrac:         0.3,
		StrideBytes:     8,
		MeanDepDist:     6,
		RedundantFrac:   0.1,
		NumCompIDs:      64,
		ZipfExponent:    1.2,
	}
	p.Mix[IntALU] = 0.6
	p.Mix[Load] = 0.25
	p.Mix[Store] = 0.15
	return p
}

// TestSnapshotRestoreResumesIdentically pins the contract sampled
// simulation depends on: restoring a snapshot reproduces the exact
// instruction sequence the original generator emitted from that
// position, bit for bit, including into a different generator
// instance.
func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	p := snapshotParams(7)
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	g.Skip(12345)
	snap := g.Snapshot()
	if snap.Pos() != 12345 {
		t.Fatalf("snapshot position = %d, want 12345", snap.Pos())
	}
	want := make([]Instr, 4096)
	for i := range want {
		want[i] = g.Next()
	}

	// Restore into a second generator that has drifted elsewhere.
	other, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	other.Skip(999)
	if err := other.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if other.Emitted() != 12345 {
		t.Fatalf("restored Emitted() = %d, want 12345", other.Emitted())
	}
	for i := range want {
		if got := other.Next(); got != want[i] {
			t.Fatalf("instruction %d diverges after restore: got %+v want %+v", i, got, want[i])
		}
	}

	// The snapshot is reusable: a second restore replays the same
	// sequence again.
	if err := other.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := other.Next(); got != want[i] {
			t.Fatalf("instruction %d diverges on second restore", i)
		}
	}
}

// TestSnapshotIsolation verifies the snapshot is a deep copy: mutating
// the generator after taking it does not corrupt the recorded state.
func TestSnapshotIsolation(t *testing.T) {
	g, err := NewGenerator(snapshotParams(3))
	if err != nil {
		t.Fatal(err)
	}
	g.Skip(500)
	snap := g.Snapshot()
	first := g.Next() // advances visits/callStack/rng past the snapshot
	g.Skip(5000)
	if err := g.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := g.Next(); got != first {
		t.Fatalf("post-restore instruction %+v differs from original %+v", got, first)
	}
}

// TestRestoreRejectsForeignSnapshot: a snapshot must not be restorable
// into a generator for a different workload.
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	a, err := NewGenerator(snapshotParams(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(snapshotParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(a.Snapshot()); err == nil {
		t.Fatal("restoring a foreign snapshot should fail")
	}
}

// TestSkipMatchesNext pins Skip's equivalence to discarding Next
// results.
func TestSkipMatchesNext(t *testing.T) {
	p := snapshotParams(11)
	a, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	a.Skip(7777)
	for i := 0; i < 7777; i++ {
		b.Next()
	}
	for i := 0; i < 256; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("streams diverge %d instructions after skip", i)
		}
	}
}
