package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Metrics is the aggregate Recorder: it folds the runner's event
// stream into atomic counters, gauges, and latency histograms, and
// renders the whole campaign as a Summary at the end. One Metrics
// value typically spans a whole CLI invocation, including chained
// suites (pbenhance's base and enhanced phases accumulate into the
// same totals).
type Metrics struct {
	// Row accounting. RowsSimulated counts rows actually evaluated,
	// RowsResumed rows restored from a checkpoint, RowsFailed rows
	// that exhausted their attempts — the resumed-vs-simulated split
	// is the engine's cost ledger (the paper's 2X-run budget is paid
	// only for simulated rows).
	RowsSimulated Counter
	RowsResumed   Counter
	RowsFailed    Counter

	// Attempt accounting across retries.
	Attempts Counter
	Retries  Counter
	Panics   Counter
	Timeouts Counter

	// Workers tracks currently and peak concurrently busy workers.
	Workers Gauge

	// Distributed-execution accounting (see DistRecorder): lease
	// claims (steals included), steals of expired leases, leases lost
	// to a stealer, durable shard-ledger commits, and shard files
	// quarantined by merge. All zero for single-process campaigns.
	LeasesClaimed     Counter
	LeasesStolen      Counter
	LeasesLost        Counter
	Commits           Counter
	ShardsQuarantined Counter

	// Latency distributions: whole rows (including backoff between
	// retries), single attempts, and time rows spent queued before
	// their first attempt.
	RowLatency     Histogram
	AttemptLatency Histogram
	Queued         Histogram

	expectedRows atomic.Int64
	suiteSeen    atomic.Bool
	startNano    atomic.Int64 // wall start, set by the first event

	mu          sync.Mutex
	fingerprint string
	scopes      map[string]*ScopeMetrics
	order       []string
}

// ScopeMetrics is the per-benchmark (per runner scope) slice of the
// campaign totals.
type ScopeMetrics struct {
	Scope     string
	Rows      int64
	Simulated int64
	Resumed   int64
	Failed    int64
	Wall      time.Duration
}

// NewMetrics returns an empty Metrics ready to be used as a Recorder.
func NewMetrics() *Metrics { return &Metrics{scopes: make(map[string]*ScopeMetrics)} }

// markStart records the campaign wall-clock start on the first event.
func (m *Metrics) markStart() {
	if m.startNano.Load() == 0 {
		m.startNano.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// scope returns (creating if needed) the per-scope accumulator.
func (m *Metrics) scope(name string) *ScopeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.scopes[name]
	if !ok {
		s = &ScopeMetrics{Scope: name}
		m.scopes[name] = s
		m.order = append(m.order, name)
	}
	return s
}

// SuiteStarted implements Recorder.
func (m *Metrics) SuiteStarted(fingerprint string, benchmarks, rowsPerBenchmark int) {
	m.markStart()
	m.suiteSeen.Store(true)
	m.expectedRows.Add(int64(benchmarks) * int64(rowsPerBenchmark))
	m.mu.Lock()
	m.fingerprint = fingerprint
	m.mu.Unlock()
}

// RunStarted implements Recorder.
func (m *Metrics) RunStarted(scope string, rows int) {
	m.markStart()
	// Without a suite announcement (direct runner use) the expected
	// total grows run by run so progress output stays meaningful.
	if !m.suiteSeen.Load() {
		m.expectedRows.Add(int64(rows))
	}
	m.scope(scope)
}

// QueueWait implements Recorder.
func (m *Metrics) QueueWait(_ string, _ int, wait time.Duration) { m.Queued.Observe(wait) }

// WorkerActive implements Recorder.
func (m *Metrics) WorkerActive(delta int) { m.Workers.Add(int64(delta)) }

// AttemptDone implements Recorder.
func (m *Metrics) AttemptDone(_ string, _, _ int, latency time.Duration, outcome Outcome, _ error) {
	m.Attempts.Inc()
	m.AttemptLatency.Observe(latency)
	switch outcome {
	case Panicked:
		m.Panics.Inc()
	case TimedOut:
		m.Timeouts.Inc()
	}
}

// RowRetried implements Recorder.
func (m *Metrics) RowRetried(string, int, int, time.Duration, error) { m.Retries.Inc() }

// RowFinished implements Recorder.
func (m *Metrics) RowFinished(scope string, _ int, _ float64, latency time.Duration, _ int, fromCheckpoint bool) {
	s := m.scope(scope)
	m.mu.Lock()
	s.Rows++
	if fromCheckpoint {
		s.Resumed++
	} else {
		s.Simulated++
	}
	m.mu.Unlock()
	if fromCheckpoint {
		m.RowsResumed.Inc()
		return
	}
	m.RowsSimulated.Inc()
	m.RowLatency.Observe(latency)
}

// RowFailed implements Recorder.
func (m *Metrics) RowFailed(scope string, _, _ int, _ error) {
	m.RowsFailed.Inc()
	s := m.scope(scope)
	m.mu.Lock()
	s.Failed++
	m.mu.Unlock()
}

// RunFinished implements Recorder.
func (m *Metrics) RunFinished(scope string, elapsed time.Duration) {
	s := m.scope(scope)
	m.mu.Lock()
	s.Wall += elapsed
	m.mu.Unlock()
}

// RowsDone returns simulated + resumed rows so far.
func (m *Metrics) RowsDone() int64 { return m.RowsSimulated.Value() + m.RowsResumed.Value() }

// ExpectedRows returns the announced campaign size (0 when unknown).
func (m *Metrics) ExpectedRows() int64 { return m.expectedRows.Load() }

// Elapsed returns the wall time since the first recorded event.
func (m *Metrics) Elapsed() time.Duration {
	start := m.startNano.Load()
	if start == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - start)
}

// Fingerprint returns the most recent suite fingerprint seen.
func (m *Metrics) Fingerprint() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fingerprint
}

// Summary freezes the campaign totals into a serializable report.
type Summary struct {
	Tool        string        `json:"tool,omitempty"`
	Fingerprint string        `json:"fp,omitempty"`
	Wall        time.Duration `json:"wall_ns"`

	RowsExpected  int64 `json:"rows_expected"`
	RowsSimulated int64 `json:"rows_simulated"`
	RowsResumed   int64 `json:"rows_resumed"`
	RowsFailed    int64 `json:"rows_failed"`

	Attempts int64 `json:"attempts"`
	Retries  int64 `json:"retries"`
	Panics   int64 `json:"panics"`
	Timeouts int64 `json:"timeouts"`

	LeasesClaimed     int64 `json:"leases_claimed,omitempty"`
	LeasesStolen      int64 `json:"leases_stolen,omitempty"`
	LeasesLost        int64 `json:"leases_lost,omitempty"`
	Commits           int64 `json:"commits,omitempty"`
	ShardsQuarantined int64 `json:"shards_quarantined,omitempty"`

	RowsPerSec float64 `json:"rows_per_sec"`

	RowLatencyP50 time.Duration `json:"row_latency_p50_ns"`
	RowLatencyP95 time.Duration `json:"row_latency_p95_ns"`
	RowLatencyMax time.Duration `json:"row_latency_max_ns"`
	QueueWaitP95  time.Duration `json:"queue_wait_p95_ns"`

	WorkersPeak int64 `json:"workers_peak"`

	Benchmarks []ScopeMetrics `json:"benchmarks,omitempty"`
}

// Summary computes the report at this instant. tool names the CLI for
// the header (may be empty).
func (m *Metrics) Summary(tool string) Summary {
	wall := m.Elapsed()
	s := Summary{
		Tool:              tool,
		Fingerprint:       m.Fingerprint(),
		Wall:              wall,
		RowsExpected:      m.ExpectedRows(),
		RowsSimulated:     m.RowsSimulated.Value(),
		RowsResumed:       m.RowsResumed.Value(),
		RowsFailed:        m.RowsFailed.Value(),
		Attempts:          m.Attempts.Value(),
		Retries:           m.Retries.Value(),
		Panics:            m.Panics.Value(),
		Timeouts:          m.Timeouts.Value(),
		LeasesClaimed:     m.LeasesClaimed.Value(),
		LeasesStolen:      m.LeasesStolen.Value(),
		LeasesLost:        m.LeasesLost.Value(),
		Commits:           m.Commits.Value(),
		ShardsQuarantined: m.ShardsQuarantined.Value(),
		RowLatencyP50:     m.RowLatency.Quantile(0.50),
		RowLatencyP95:     m.RowLatency.Quantile(0.95),
		RowLatencyMax:     m.RowLatency.Max(),
		QueueWaitP95:      m.Queued.Quantile(0.95),
		WorkersPeak:       m.Workers.Peak(),
	}
	if wall > 0 {
		s.RowsPerSec = float64(s.RowsSimulated) / wall.Seconds()
	}
	m.mu.Lock()
	for _, name := range m.order {
		s.Benchmarks = append(s.Benchmarks, *m.scopes[name])
	}
	m.mu.Unlock()
	sort.SliceStable(s.Benchmarks, func(i, j int) bool { return s.Benchmarks[i].Scope < s.Benchmarks[j].Scope })
	return s
}

// fmtDur renders a duration at a resolution matched to its magnitude.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	}
	return d.String()
}

// Table renders the summary as the human-readable end-of-run block
// the CLIs print on stderr.
func (s Summary) Table() string {
	var b strings.Builder
	title := "run summary"
	if s.Tool != "" {
		title = s.Tool + " run summary"
	}
	fmt.Fprintf(&b, "── %s ", title)
	b.WriteString(strings.Repeat("─", maxInt(1, 58-len(title))))
	b.WriteByte('\n')
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	if s.Fingerprint != "" {
		fmt.Fprintf(w, "fingerprint\t%s\n", s.Fingerprint)
	}
	fmt.Fprintf(w, "wall time\t%s\n", fmtDur(s.Wall))
	done := s.RowsSimulated + s.RowsResumed
	rows := fmt.Sprintf("%d done = %d simulated + %d resumed", done, s.RowsSimulated, s.RowsResumed)
	if s.RowsFailed > 0 {
		rows += fmt.Sprintf(" (%d failed)", s.RowsFailed)
	}
	if s.RowsExpected > 0 {
		rows += fmt.Sprintf(" of %d expected", s.RowsExpected)
	}
	fmt.Fprintf(w, "rows\t%s\n", rows)
	fmt.Fprintf(w, "throughput\t%.1f simulated rows/s\n", s.RowsPerSec)
	fmt.Fprintf(w, "row latency\tp50 %s\tp95 %s\tmax %s\n",
		fmtDur(s.RowLatencyP50), fmtDur(s.RowLatencyP95), fmtDur(s.RowLatencyMax))
	fmt.Fprintf(w, "attempts\t%d (%d retries, %d panics, %d timeouts)\n",
		s.Attempts, s.Retries, s.Panics, s.Timeouts)
	fmt.Fprintf(w, "queue wait\tp95 %s\n", fmtDur(s.QueueWaitP95))
	fmt.Fprintf(w, "workers\tpeak %d concurrent\n", s.WorkersPeak)
	if s.LeasesClaimed > 0 || s.Commits > 0 || s.ShardsQuarantined > 0 {
		fmt.Fprintf(w, "dist\t%d leases (%d stolen, %d lost), %d commits, %d quarantined shards\n",
			s.LeasesClaimed, s.LeasesStolen, s.LeasesLost, s.Commits, s.ShardsQuarantined)
	}
	if len(s.Benchmarks) > 0 {
		fmt.Fprintf(w, "per benchmark\twall\trows\tsimulated\tresumed\tfailed\n")
		for _, sc := range s.Benchmarks {
			fmt.Fprintf(w, "  %s\t%s\t%d\t%d\t%d\t%d\n",
				sc.Scope, fmtDur(sc.Wall), sc.Rows, sc.Simulated, sc.Resumed, sc.Failed)
		}
	}
	w.Flush() //pbcheck:ignore errdiscard tabwriter flushing into an in-memory strings.Builder cannot fail
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Snapshot exposes the live totals as a plain map, the shape the
// debug server publishes under expvar.
func (m *Metrics) Snapshot() map[string]any {
	return map[string]any{
		"rows_simulated":     m.RowsSimulated.Value(),
		"rows_resumed":       m.RowsResumed.Value(),
		"rows_failed":        m.RowsFailed.Value(),
		"rows_expected":      m.ExpectedRows(),
		"attempts":           m.Attempts.Value(),
		"retries":            m.Retries.Value(),
		"panics":             m.Panics.Value(),
		"timeouts":           m.Timeouts.Value(),
		"leases_claimed":     m.LeasesClaimed.Value(),
		"leases_stolen":      m.LeasesStolen.Value(),
		"leases_lost":        m.LeasesLost.Value(),
		"commits":            m.Commits.Value(),
		"shards_quarantined": m.ShardsQuarantined.Value(),
		"workers_active":     m.Workers.Value(),
		"workers_peak":       m.Workers.Peak(),
		"row_latency_p50_ms": float64(m.RowLatency.Quantile(0.50)) / 1e6,
		"row_latency_p95_ms": float64(m.RowLatency.Quantile(0.95)) / 1e6,
		"row_latency_max_ms": float64(m.RowLatency.Max()) / 1e6,
		"elapsed_ms":         float64(m.Elapsed()) / 1e6,
	}
}
