package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// The expvar variable is registered at most once per process (expvar
// panics on duplicate names); the pointer it dereferences is swapped
// so chained sessions publish their current Metrics.
var (
	expvarMetrics  atomic.Pointer[Metrics]
	expvarRegister = func() {
		expvar.Publish("pbsim", expvar.Func(func() any {
			if m := expvarMetrics.Load(); m != nil {
				return m.Snapshot()
			}
			return nil
		}))
	}
	expvarOnce atomic.Bool
)

// PublishExpvar exposes m as the process's "pbsim" expvar variable
// (visible at /debug/vars on the debug server).
func PublishExpvar(m *Metrics) {
	expvarMetrics.Store(m)
	if expvarOnce.CompareAndSwap(false, true) {
		expvarRegister()
	}
}

// DebugServer is the opt-in diagnostics endpoint behind the CLIs'
// -debug-addr flag: /debug/vars (expvar, including the live campaign
// snapshot) and /debug/pprof (CPU, heap, goroutine, block, mutex
// profiles) on a dedicated mux, so enabling diagnostics can never
// collide with anything on http.DefaultServeMux.
type DebugServer struct {
	Addr string // actual listen address (resolves ":0" requests)
	srv  *http.Server
}

// ServeDebug starts the diagnostics server on addr (e.g.
// "localhost:6060"). It binds synchronously — a bad address fails
// fast — then serves in the background until Close.
func ServeDebug(addr string, m *Metrics) (*DebugServer, error) {
	if m != nil {
		PublishExpvar(m)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	d := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
	}
	//pbcheck:ignore leakygo the goroutine terminates when DebugServer.Close shuts the listener down; http.Server owns that signal internally
	go d.srv.Serve(ln) //pbcheck:ignore errdiscard Serve returns http.ErrServerClosed on Close; nothing actionable remains
	return d, nil
}

// Close stops the diagnostics server immediately.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}
