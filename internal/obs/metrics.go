// Package obs is the observability layer of the PB campaign engine:
// lock-free counters, gauges, and latency histograms; a Recorder
// interface the fault-tolerant runner publishes its lifecycle events
// through (with a zero-overhead no-op default); a JSONL event sink
// keyed by the same experiment fingerprint the checkpoint uses; an
// end-of-run summary table (throughput, latency quantiles, retry and
// fault totals, resumed-vs-simulated accounting); and an opt-in debug
// HTTP server exposing expvar and pprof.
//
// The package is stdlib-only and imports nothing else from this
// module, so every layer (runner, experiment, commands, examples) can
// depend on it without cycles. Sampling-rigor papers get their
// credibility from knowing exactly how much was simulated and at what
// cost; this package gives the engine the same self-accounting.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic;
// this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic up/down value that also tracks its high-water
// mark (e.g. peak concurrently busy workers). The zero value is ready
// to use.
type Gauge struct{ cur, peak atomic.Int64 }

// Add moves the gauge by delta and returns the new value, updating
// the peak if the new value exceeds it.
func (g *Gauge) Add(delta int64) int64 {
	v := g.cur.Add(delta)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return v
		}
	}
}

// Value returns the current gauge level.
func (g *Gauge) Value() int64 { return g.cur.Load() }

// Peak returns the highest level the gauge ever reached.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// histogram geometry: bucket i covers durations in
// (1µs·2^(i-1), 1µs·2^i], bucket 0 covers (0, 1µs], and one overflow
// bucket catches everything past ~134s. Fixed buckets keep Observe
// allocation-free and wait-free.
const (
	histBuckets   = 28
	histBucketMin = time.Microsecond
)

// Histogram is a fixed-bucket, power-of-two latency histogram safe
// for concurrent use. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// bucketIndex maps a duration to its bucket (histBuckets = overflow).
func bucketIndex(d time.Duration) int {
	if d <= histBucketMin {
		return 0
	}
	// Smallest i with 1µs·2^i >= d, via ceil(d/1µs).
	i := bits.Len64(uint64((d+histBucketMin-1)/histBucketMin) - 1)
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration { return histBucketMin << i }

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.n.Add(1)
	h.sum.Add(int64(d))
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Max returns the largest observed duration (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the p-quantile (0 < p <= 1) by linear
// interpolation inside the bucket containing the target rank. The
// estimate is capped at the exact observed maximum; an empty
// histogram reports 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(n)
	var cum float64
	for i := 0; i <= histBuckets; i++ {
		raw := h.counts[i].Load()
		if raw == 0 {
			continue
		}
		c := float64(raw)
		if cum+c >= target {
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			if i == histBuckets || hi > h.Max() {
				hi = h.Max()
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - cum) / c
			est := lo + time.Duration(frac*float64(hi-lo))
			if max := h.Max(); est > max {
				est = max
			}
			return est
		}
		cum += c
	}
	return h.Max()
}
