package obs

import "time"

// Outcome classifies the result of one evaluation attempt. The
// runner, which knows its own error types, performs the
// classification so this package stays dependency-free.
type Outcome uint8

const (
	// OK marks a successful attempt.
	OK Outcome = iota
	// Errored marks an attempt that failed with an ordinary error.
	Errored
	// Panicked marks an attempt that crashed and was recovered.
	Panicked
	// TimedOut marks an attempt that exceeded its per-attempt deadline.
	TimedOut
)

// String returns the lowercase event-schema name of the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Errored:
		return "error"
	case Panicked:
		return "panic"
	case TimedOut:
		return "timeout"
	}
	return "unknown"
}

// Recorder observes the lifecycle of a fault-tolerant evaluation.
// Implementations must be safe for concurrent use: the runner invokes
// them from every worker goroutine. Methods must not block — they sit
// on the evaluation hot path.
//
// The nil Recorder inside runner.Config and the Nop type here are the
// zero-overhead defaults; Metrics aggregates events into counters and
// histograms; JSONL journals them to a file; Multi fans out to
// several recorders at once.
type Recorder interface {
	// SuiteStarted announces a whole campaign: its checkpoint
	// fingerprint, the number of benchmarks, and the design rows per
	// benchmark. Emitted by the experiment harness before the first
	// row runs; may be emitted again when one process chains several
	// suites (e.g. pbenhance's base and enhanced phases).
	SuiteStarted(fingerprint string, benchmarks, rowsPerBenchmark int)
	// RunStarted announces one runner evaluation (one benchmark's
	// rows under the given scope).
	RunStarted(scope string, rows int)
	// QueueWait reports how long a row sat queued between the start
	// of the evaluation and its first attempt.
	QueueWait(scope string, row int, wait time.Duration)
	// WorkerActive moves the busy-worker gauge by delta (+1 when a
	// worker picks up a row, -1 when it finishes one).
	WorkerActive(delta int)
	// AttemptDone reports one attempt's latency and classified
	// outcome; err is nil exactly when outcome is OK.
	AttemptDone(scope string, row, attempt int, latency time.Duration, outcome Outcome, err error)
	// RowRetried reports a scheduled retry: attempt is the upcoming
	// attempt number (1-based over the retries), delay the backoff
	// sleep, err the failure that caused it.
	RowRetried(scope string, row, attempt int, delay time.Duration, err error)
	// RowFinished reports a completed row. fromCheckpoint marks rows
	// restored from the journal rather than simulated; those carry
	// zero latency and zero attempts.
	RowFinished(scope string, row int, value float64, latency time.Duration, attempts int, fromCheckpoint bool)
	// RowFailed reports a row that exhausted all its attempts.
	RowFailed(scope string, row, attempts int, err error)
	// RunFinished closes the scope opened by RunStarted.
	RunFinished(scope string, elapsed time.Duration)
}

// Nop is the do-nothing Recorder. Every method is an empty,
// allocation-free shim, so instrumented code paths cost nothing
// beyond the (inlineable) interface calls; see the benchmark in
// internal/runner proving 0 allocs/op on the evaluation hot path.
type Nop struct{}

// SuiteStarted implements Recorder.
func (Nop) SuiteStarted(string, int, int) {}

// RunStarted implements Recorder.
func (Nop) RunStarted(string, int) {}

// QueueWait implements Recorder.
func (Nop) QueueWait(string, int, time.Duration) {}

// WorkerActive implements Recorder.
func (Nop) WorkerActive(int) {}

// AttemptDone implements Recorder.
func (Nop) AttemptDone(string, int, int, time.Duration, Outcome, error) {}

// RowRetried implements Recorder.
func (Nop) RowRetried(string, int, int, time.Duration, error) {}

// RowFinished implements Recorder.
func (Nop) RowFinished(string, int, float64, time.Duration, int, bool) {}

// RowFailed implements Recorder.
func (Nop) RowFailed(string, int, int, error) {}

// RunFinished implements Recorder.
func (Nop) RunFinished(string, time.Duration) {}

// multi fans every event out to each recorder in order.
type multi []Recorder

// Multi combines recorders; nil entries are dropped. Zero or one
// effective recorder collapses to Nop or the recorder itself.
func Multi(recs ...Recorder) Recorder {
	var m multi
	for _, r := range recs {
		if r != nil {
			m = append(m, r)
		}
	}
	switch len(m) {
	case 0:
		return Nop{}
	case 1:
		return m[0]
	}
	return m
}

func (m multi) SuiteStarted(fp string, benchmarks, rows int) {
	for _, r := range m {
		r.SuiteStarted(fp, benchmarks, rows)
	}
}

func (m multi) RunStarted(scope string, rows int) {
	for _, r := range m {
		r.RunStarted(scope, rows)
	}
}

func (m multi) QueueWait(scope string, row int, wait time.Duration) {
	for _, r := range m {
		r.QueueWait(scope, row, wait)
	}
}

func (m multi) WorkerActive(delta int) {
	for _, r := range m {
		r.WorkerActive(delta)
	}
}

func (m multi) AttemptDone(scope string, row, attempt int, latency time.Duration, outcome Outcome, err error) {
	for _, r := range m {
		r.AttemptDone(scope, row, attempt, latency, outcome, err)
	}
}

func (m multi) RowRetried(scope string, row, attempt int, delay time.Duration, err error) {
	for _, r := range m {
		r.RowRetried(scope, row, attempt, delay, err)
	}
}

func (m multi) RowFinished(scope string, row int, value float64, latency time.Duration, attempts int, fromCheckpoint bool) {
	for _, r := range m {
		r.RowFinished(scope, row, value, latency, attempts, fromCheckpoint)
	}
}

func (m multi) RowFailed(scope string, row, attempts int, err error) {
	for _, r := range m {
		r.RowFailed(scope, row, attempts, err)
	}
}

func (m multi) RunFinished(scope string, elapsed time.Duration) {
	for _, r := range m {
		r.RunFinished(scope, elapsed)
	}
}
