package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// decodeLines parses every JSONL line back into generic maps.
func decodeLines(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		events = append(events, m)
	}
	return events
}

func TestJSONLEventStream(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }

	j.SuiteStarted("fp-abc", 2, 8)
	j.RunStarted("base/gzip", 8)
	j.RowFinished("base/gzip", 0, 123.5, 2*time.Millisecond, 1, false)
	j.RowFinished("base/gzip", 1, 456.0, 0, 0, true) // checkpoint restore
	j.RowRetried("base/gzip", 2, 1, 5*time.Millisecond, errors.New("boom"))
	j.RowFailed("base/gzip", 2, 3, errors.New("boom"))
	j.RunFinished("base/gzip", 100*time.Millisecond)
	j.WriteSummary(Summary{Tool: "test", RowsSimulated: 1})
	// Per-attempt firehose must be ignored by the sink.
	j.AttemptDone("base/gzip", 0, 0, time.Millisecond, OK, nil)
	j.QueueWait("base/gzip", 0, time.Millisecond)
	j.WorkerActive(1)
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	events := decodeLines(t, buf.Bytes())
	wantTypes := []string{
		"suite_started", "run_started", "row_finished", "checkpoint_hit",
		"row_retried", "row_failed", "run_finished", "summary",
	}
	if len(events) != len(wantTypes) {
		t.Fatalf("got %d events, want %d:\n%s", len(events), len(wantTypes), buf.String())
	}
	for i, want := range wantTypes {
		if got := events[i]["t"]; got != want {
			t.Errorf("event %d type = %v, want %q", i, got, want)
		}
		if got := events[i]["ts"]; got != "2026-08-05T12:00:00Z" {
			t.Errorf("event %d ts = %v", i, got)
		}
		// Every event after the suite announcement carries the
		// checkpoint-compatible fingerprint key.
		if got := events[i]["fp"]; got != "fp-abc" {
			t.Errorf("event %d fp = %v, want fp-abc", i, got)
		}
	}
	if got := events[2]["attempts"]; got != float64(1) {
		t.Errorf("row_finished attempts = %v, want 1", got)
	}
	if got := events[3]["value"]; got != 456.0 {
		t.Errorf("checkpoint_hit value = %v, want 456", got)
	}
	if got := events[4]["err"]; got != "boom" {
		t.Errorf("row_retried err = %v, want boom", got)
	}
	sum, ok := events[7]["summary"].(map[string]any)
	if !ok {
		t.Fatalf("summary payload missing: %v", events[7])
	}
	if got := sum["rows_simulated"]; got != float64(1) {
		t.Errorf("summary rows_simulated = %v, want 1", got)
	}
}

func TestOpenJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	j, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SuiteStarted("fp", 1, 2)
	j.RowFinished("s", 0, 1, time.Millisecond, 1, false)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(decodeLines(t, data)); got != 2 {
		t.Errorf("file has %d events, want 2", got)
	}
	// Events after Close are dropped, not crashed on.
	j.RunStarted("late", 1)
	if err := j.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// errWriter fails after n writes; the sink must remember the first
// error and keep the experiment alive.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(&errWriter{n: 0})
	for i := 0; i < 4096; i++ { // enough to overflow the bufio buffer
		j.RunStarted("s", 1)
	}
	if err := j.Close(); err == nil {
		t.Fatal("expected sticky write error from Close")
	}
}
