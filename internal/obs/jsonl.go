package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// JSONL journals campaign lifecycle events as one JSON object per
// line, keyed by the same experiment fingerprint the checkpoint uses,
// so a metrics file and a checkpoint file from one campaign can be
// joined offline. It records the coarse events (suite/run lifecycle,
// row completions, retries, failures, the final summary) and
// deliberately ignores the per-attempt firehose (AttemptDone,
// QueueWait, WorkerActive), which belongs in Metrics; embed both via
// Multi to get aggregates and the journal at once.
//
// Event schema (field `t` selects the type):
//
//	{"t":"suite_started","ts":...,"fp":...,"benchmarks":N,"rows_per_benchmark":R}
//	{"t":"run_started","ts":...,"fp":...,"scope":S,"rows":R}
//	{"t":"row_finished","ts":...,"fp":...,"scope":S,"row":I,"value":V,"ms":L,"attempts":A}
//	{"t":"checkpoint_hit","ts":...,"fp":...,"scope":S,"row":I,"value":V}
//	{"t":"row_retried","ts":...,"fp":...,"scope":S,"row":I,"attempt":A,"delay_ms":D,"err":E}
//	{"t":"row_failed","ts":...,"fp":...,"scope":S,"row":I,"attempts":A,"err":E}
//	{"t":"run_finished","ts":...,"fp":...,"scope":S,"ms":L}
//	{"t":"summary","ts":...,"fp":...,"summary":{...obs.Summary...}}
//
// All methods are safe for concurrent use. Write errors are sticky:
// the first one is remembered and returned by Close, and later events
// are dropped (observability must never fail the experiment itself).
type JSONL struct {
	Nop // per-attempt events default to no-ops

	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	fp     string
	err    error
	now    func() time.Time // injectable clock for tests
}

// NewJSONL wraps an arbitrary writer (closed by Close when it
// implements io.Closer).
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w), now: time.Now}
	if c, ok := w.(io.Closer); ok {
		j.closer = c
	}
	return j
}

// OpenJSONL creates (truncating) the event file at path.
func OpenJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open metrics file: %w", err)
	}
	return NewJSONL(f), nil
}

// emit marshals one event line under the lock, stamping ts and fp.
func (j *JSONL) emit(event map[string]any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.w == nil {
		return
	}
	event["ts"] = j.now().UTC().Format(time.RFC3339Nano)
	if j.fp != "" {
		event["fp"] = j.fp
	}
	line, err := json.Marshal(event)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = err
	}
}

// SuiteStarted implements Recorder; it also (re)keys subsequent
// events with the suite's fingerprint.
func (j *JSONL) SuiteStarted(fingerprint string, benchmarks, rowsPerBenchmark int) {
	j.mu.Lock()
	j.fp = fingerprint
	j.mu.Unlock()
	j.emit(map[string]any{
		"t":                  "suite_started",
		"benchmarks":         benchmarks,
		"rows_per_benchmark": rowsPerBenchmark,
	})
}

// RunStarted implements Recorder.
func (j *JSONL) RunStarted(scope string, rows int) {
	j.emit(map[string]any{"t": "run_started", "scope": scope, "rows": rows})
}

// RowFinished implements Recorder. Checkpoint restores are journaled
// as checkpoint_hit events, simulated rows as row_finished.
func (j *JSONL) RowFinished(scope string, row int, value float64, latency time.Duration, attempts int, fromCheckpoint bool) {
	if fromCheckpoint {
		j.emit(map[string]any{"t": "checkpoint_hit", "scope": scope, "row": row, "value": value})
		return
	}
	j.emit(map[string]any{
		"t": "row_finished", "scope": scope, "row": row, "value": value,
		"ms": durMS(latency), "attempts": attempts,
	})
}

// RowRetried implements Recorder.
func (j *JSONL) RowRetried(scope string, row, attempt int, delay time.Duration, err error) {
	j.emit(map[string]any{
		"t": "row_retried", "scope": scope, "row": row, "attempt": attempt,
		"delay_ms": durMS(delay), "err": errString(err),
	})
}

// RowFailed implements Recorder.
func (j *JSONL) RowFailed(scope string, row, attempts int, err error) {
	j.emit(map[string]any{
		"t": "row_failed", "scope": scope, "row": row, "attempts": attempts,
		"err": errString(err),
	})
}

// RunFinished implements Recorder.
func (j *JSONL) RunFinished(scope string, elapsed time.Duration) {
	j.emit(map[string]any{"t": "run_finished", "scope": scope, "ms": durMS(elapsed)})
}

// WriteSummary journals the end-of-run summary event; the CLI session
// calls it once before Close.
func (j *JSONL) WriteSummary(s Summary) {
	j.emit(map[string]any{"t": "summary", "summary": s})
}

// Close flushes the journal and returns the first write error, if any.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	j.w = nil
	if j.closer != nil {
		if err := j.closer.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.closer = nil
	}
	return j.err
}

// durMS renders a duration as fractional milliseconds for the event
// stream (compact and human-scannable, unlike raw nanoseconds).
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
