package obs

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"sync"
	"time"
)

// CLIFlags is the shared observability flag set every command in this
// repository exposes: -metrics (JSONL event file), -progress
// (periodic progress lines plus the end-of-run summary table on
// stderr), and -debug-addr (expvar + pprof HTTP endpoint).
type CLIFlags struct {
	Tool             string
	MetricsPath      string
	Progress         bool
	DebugAddr        string
	ProgressInterval time.Duration
}

// RegisterCLIFlags installs the observability flags on fs (commands
// pass flag.CommandLine) and returns the holder to Start after
// parsing.
func RegisterCLIFlags(fs *flag.FlagSet, tool string) *CLIFlags {
	c := &CLIFlags{Tool: tool, ProgressInterval: 2 * time.Second}
	fs.StringVar(&c.MetricsPath, "metrics", "", "write observability events (JSONL) to this file and print a run summary")
	fs.BoolVar(&c.Progress, "progress", false, "print periodic progress lines and an end-of-run summary to stderr")
	fs.StringVar(&c.DebugAddr, "debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	return c
}

// Session is one command invocation's observability context. Obtain
// it from CLIFlags.Start, hand Recorder() to the experiment/runner
// options, and defer Close: Close stops the progress printer, writes
// the summary event to the JSONL sink, prints the summary table, and
// shuts the debug server down.
type Session struct {
	tool     string
	enabled  bool
	metrics  *Metrics
	rec      Recorder
	sink     *JSONL
	debug    *DebugServer
	stderr   io.Writer
	progress bool

	stopProgress chan struct{}
	progressDone chan struct{}
	closeOnce    sync.Once
	closeErr     error
}

// Start builds the session from the parsed flags. When no
// observability flag was given the session is inert: Recorder()
// returns nil (the runner's zero-overhead path) and Close does
// nothing.
func (c *CLIFlags) Start(stderr io.Writer) (*Session, error) {
	s := &Session{
		tool:     c.Tool,
		stderr:   stderr,
		enabled:  c.MetricsPath != "" || c.Progress || c.DebugAddr != "",
		progress: c.Progress,
	}
	if !s.enabled {
		return s, nil
	}
	s.metrics = NewMetrics()
	recs := []Recorder{s.metrics}
	if c.MetricsPath != "" {
		sink, err := OpenJSONL(c.MetricsPath)
		if err != nil {
			return nil, err
		}
		s.sink = sink
		recs = append(recs, sink)
	}
	s.rec = Multi(recs...)
	if c.DebugAddr != "" {
		d, err := ServeDebug(c.DebugAddr, s.metrics)
		if err != nil {
			if cerr := s.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, err
		}
		s.debug = d
		fmt.Fprintf(stderr, "%s: debug server on http://%s/debug/pprof/ (expvar at /debug/vars)\n", c.Tool, d.Addr)
	}
	if c.Progress {
		interval := c.ProgressInterval
		if interval <= 0 {
			interval = 2 * time.Second
		}
		s.stopProgress = make(chan struct{})
		s.progressDone = make(chan struct{})
		go s.printProgress(interval)
	}
	return s, nil
}

// ExitError carries an explicit process exit code alongside an error,
// for failures that are not plain runtime errors (exit code 1): usage
// mistakes exit 2, and tools with richer contracts can pick any code.
type ExitError struct {
	Code int
	Err  error
}

func (e *ExitError) Error() string { return e.Err.Error() }

func (e *ExitError) Unwrap() error { return e.Err }

// Usagef builds the exit-2 error for a command-line usage mistake
// (unknown benchmark name, malformed flag value, missing argument) as
// opposed to a failure of valid work.
func Usagef(format string, args ...any) error {
	return &ExitError{Code: 2, Err: fmt.Errorf(format, args...)}
}

// Exit converts a command's run() error into its process exit code,
// printing the uniform "tool: error: ..." line on stderr for non-nil
// errors. The code contract shared by every CLI in this repository:
//
//	0  success (err == nil)
//	1  the work itself failed (simulation error, partial campaign, I/O)
//	2  usage error (Usagef or an *ExitError carrying 2)
//
// An *ExitError anywhere in err's chain selects its own code. Typical
// use: os.Exit(obs.Exit(os.Stderr, "pbrank", run())).
func Exit(stderr io.Writer, tool string, err error) int {
	if err == nil {
		return 0
	}
	fmt.Fprintf(stderr, "%s: error: %v\n", tool, err)
	var ee *ExitError
	if errors.As(err, &ee) {
		return ee.Code
	}
	return 1
}

// FoldClose closes c and, if the close fails while *err is still nil,
// stores the close error there. It is the deferred-close idiom the
// errdiscard analyzer demands: `defer obs.FoldClose(&err, sess)`
// propagates a failed metrics flush (or checkpoint sync) instead of
// silently discarding it, without displacing an earlier error.
func FoldClose(err *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}

// Recorder returns the session's event fan-out, or nil when
// observability is off (which the runner treats as the no-op path).
func (s *Session) Recorder() Recorder {
	if !s.enabled {
		return nil
	}
	return s.rec
}

// Metrics returns the live aggregates (nil when disabled).
func (s *Session) Metrics() *Metrics { return s.metrics }

// printProgress emits one status line per tick until stopped.
func (s *Session) printProgress(interval time.Duration) {
	defer close(s.progressDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopProgress:
			return
		case <-t.C:
			s.progressLine()
		}
	}
}

func (s *Session) progressLine() {
	m := s.metrics
	done := m.RowsDone()
	total := m.ExpectedRows()
	elapsed := m.Elapsed()
	var rate float64
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(m.RowsSimulated.Value()) / secs
	}
	pct := ""
	if total > 0 {
		pct = fmt.Sprintf(" (%.1f%%)", 100*float64(done)/float64(total))
	}
	fmt.Fprintf(s.stderr, "%s: %d/%d rows%s, %.1f rows/s, %d resumed, %d retries, %d workers\n",
		s.tool, done, total, pct, rate, m.RowsResumed.Value(), m.Retries.Value(), m.Workers.Value())
}

// Close finalizes the session: it is idempotent and safe on an inert
// session. The summary table goes to stderr whenever -progress or
// -metrics was given, even after a failed or interrupted run — a
// killed campaign's partial accounting is exactly what the resume
// decision needs.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		if !s.enabled {
			return
		}
		if s.stopProgress != nil {
			close(s.stopProgress)
			<-s.progressDone
		}
		summary := s.metrics.Summary(s.tool)
		if s.sink != nil {
			s.sink.WriteSummary(summary)
			if err := s.sink.Close(); err != nil {
				s.closeErr = err
			}
		}
		if s.progress || s.sink != nil {
			fmt.Fprint(s.stderr, summary.Table())
		}
		if s.debug != nil {
			if err := s.debug.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}
