package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentPrimitives hammers every primitive from many
// goroutines and asserts exact totals; run under -race this is the
// memory-safety gate for the whole package.
func TestConcurrentPrimitives(t *testing.T) {
	const (
		goroutines = 16
		perG       = 5000
	)
	var (
		c  Counter
		g  Gauge
		h  Histogram
		wg sync.WaitGroup
	)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge settled at %d, want 0", got)
	}
	if p := g.Peak(); p < 1 || p > goroutines {
		t.Errorf("gauge peak = %d, want in [1, %d]", p, goroutines)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got, want := h.Max(), 999*time.Microsecond; got != want {
		t.Errorf("histogram max = %v, want %v", got, want)
	}
	// Exact sum: each goroutine contributes sum(0..999µs) * 5 rounds.
	var wantSum time.Duration
	for i := 0; i < perG; i++ {
		wantSum += time.Duration(i%1000) * time.Microsecond
	}
	wantSum *= goroutines
	if got := time.Duration(h.sum.Load()); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestConcurrentMetricsRecorder drives the full Recorder surface of
// Metrics from many goroutines and asserts the aggregates are exact.
func TestConcurrentMetricsRecorder(t *testing.T) {
	const (
		goroutines = 8
		rows       = 500
	)
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scope := []string{"a", "b"}[w%2]
			for i := 0; i < rows; i++ {
				m.WorkerActive(1)
				m.QueueWait(scope, i, time.Millisecond)
				m.AttemptDone(scope, i, 0, time.Millisecond, Errored, errSentinel)
				m.RowRetried(scope, i, 1, time.Millisecond, errSentinel)
				m.AttemptDone(scope, i, 1, time.Millisecond, OK, nil)
				switch i % 3 {
				case 0:
					m.RowFinished(scope, i, 1.0, 2*time.Millisecond, 2, false)
				case 1:
					m.RowFinished(scope, i, 1.0, 0, 0, true)
				case 2:
					m.RowFailed(scope, i, 2, errSentinel)
				}
				m.WorkerActive(-1)
			}
		}(w)
	}
	wg.Wait()
	var wantSim, wantRes, wantFail int64
	for i := 0; i < rows; i++ {
		switch i % 3 {
		case 0:
			wantSim++
		case 1:
			wantRes++
		case 2:
			wantFail++
		}
	}
	wantSim *= goroutines
	wantRes *= goroutines
	wantFail *= goroutines
	if got := m.RowsSimulated.Value(); got != wantSim {
		t.Errorf("RowsSimulated = %d, want %d", got, wantSim)
	}
	if got := m.RowsResumed.Value(); got != wantRes {
		t.Errorf("RowsResumed = %d, want %d", got, wantRes)
	}
	if got := m.RowsFailed.Value(); got != wantFail {
		t.Errorf("RowsFailed = %d, want %d", got, wantFail)
	}
	if got, want := m.Attempts.Value(), int64(2*goroutines*rows); got != want {
		t.Errorf("Attempts = %d, want %d", got, want)
	}
	if got, want := m.Retries.Value(), int64(goroutines*rows); got != want {
		t.Errorf("Retries = %d, want %d", got, want)
	}
	s := m.Summary("test")
	if got := s.RowsSimulated + s.RowsResumed; got != wantSim+wantRes {
		t.Errorf("summary rows done = %d, want %d", got, wantSim+wantRes)
	}
	if len(s.Benchmarks) != 2 {
		t.Fatalf("summary scopes = %d, want 2", len(s.Benchmarks))
	}
	var scopeRows int64
	for _, sc := range s.Benchmarks {
		scopeRows += sc.Rows + sc.Failed
	}
	if want := int64(goroutines * rows); scopeRows != want {
		t.Errorf("per-scope rows+failed = %d, want %d", scopeRows, want)
	}
}

var errSentinel = errSentinelType{}

type errSentinelType struct{}

func (errSentinelType) Error() string { return "sentinel" }

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // Observe clamps, bucketIndex handles <= 1µs
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + 1, 2},
		{4 * time.Microsecond, 2},
		{1024 * time.Microsecond, 10},
		{time.Hour, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	if p50 < 20*time.Millisecond || p50 > 80*time.Millisecond {
		t.Errorf("p50 = %v, want around 50ms (bucketed estimate)", p50)
	}
	if got := h.Quantile(1.0); got > h.Max() {
		t.Errorf("p100 = %v exceeds max %v", got, h.Max())
	}
	if got, want := h.Max(), 100*time.Millisecond; got != want {
		t.Errorf("max = %v, want %v", got, want)
	}
	if got := h.Quantile(0.95); got > h.Max() || got < p50 {
		t.Errorf("p95 = %v out of order (p50 %v, max %v)", got, p50, h.Max())
	}
	if mean := h.Mean(); mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("mean = %v, want ~50.5ms", mean)
	}
}

func TestGaugePeak(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(-1)
	g.Add(5)
	if got := g.Value(); got != 7 {
		t.Errorf("value = %d, want 7", got)
	}
	if got := g.Peak(); got != 7 {
		t.Errorf("peak = %d, want 7", got)
	}
	g.Add(-7)
	if got := g.Peak(); got != 7 {
		t.Errorf("peak after drain = %d, want 7", got)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OK: "ok", Errored: "error", Panicked: "panic", TimedOut: "timeout", Outcome(99): "unknown",
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
}

func TestMultiFanOut(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	r := Multi(nil, a, nil, b)
	r.RunStarted("s", 4)
	r.RowFinished("s", 0, 1, time.Millisecond, 1, false)
	for i, m := range []*Metrics{a, b} {
		if got := m.RowsSimulated.Value(); got != 1 {
			t.Errorf("recorder %d rows = %d, want 1", i, got)
		}
	}
	if _, ok := Multi(nil).(Nop); !ok {
		t.Error("Multi() with no live recorders should collapse to Nop")
	}
	if got := Multi(a); got != Recorder(a) {
		t.Error("Multi(a) should collapse to a itself")
	}
}

// TestSummaryTable pins the load-bearing lines of the human summary.
func TestSummaryTable(t *testing.T) {
	m := NewMetrics()
	m.SuiteStarted("fp-123", 2, 10)
	m.RunStarted("base/gzip", 10)
	for i := 0; i < 7; i++ {
		m.RowFinished("base/gzip", i, 1, time.Millisecond, 1, false)
	}
	for i := 7; i < 10; i++ {
		m.RowFinished("base/gzip", i, 1, 0, 0, true)
	}
	m.RunFinished("base/gzip", 50*time.Millisecond)
	tbl := m.Summary("pbrank").Table()
	for _, want := range []string{
		"pbrank run summary",
		"fp-123",
		"7 simulated + 3 resumed",
		"of 20 expected",
		"base/gzip",
	} {
		if !strings.Contains(tbl, want) {
			t.Errorf("summary table missing %q:\n%s", want, tbl)
		}
	}
}
