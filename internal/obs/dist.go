package obs

// DistRecorder is the optional Recorder extension for distributed
// campaign execution (internal/runner/dist): lease claims and steals,
// lost leases, shard-ledger commits, and quarantined shard files. It
// is a separate interface rather than new Recorder methods so every
// existing Recorder implementation — including test fakes outside
// this package — keeps compiling; obtain a view of any Recorder with
// DistEvents, which degrades to a no-op when the recorder does not
// care about dist events.
type DistRecorder interface {
	// LeaseClaimed reports one successfully acquired work-unit lease;
	// stolen marks claims that reclaimed an expired lease from a dead
	// or stalled worker.
	LeaseClaimed(scope string, row int, stolen bool)
	// LeaseLost reports a heartbeat that found its lease gone or owned
	// by someone else — the unit may be (harmlessly) double-executed.
	LeaseLost(scope string, row int)
	// CommitAppended reports one result durably appended to a shard
	// ledger by the named worker.
	CommitAppended(worker, scope string, row int)
	// ShardQuarantined reports a shard ledger that merge found corrupt
	// beyond the tolerated torn tail line.
	ShardQuarantined(path, reason string)
}

// DistEvents returns the DistRecorder view of r: r itself when it
// implements the interface (Metrics, JSONL, and Multi fan-outs do), a
// no-op otherwise — including for nil and for Nop. Callers can
// therefore record dist events unconditionally.
func DistEvents(r Recorder) DistRecorder {
	if d, ok := r.(DistRecorder); ok {
		return d
	}
	return nopDist{}
}

type nopDist struct{}

func (nopDist) LeaseClaimed(string, int, bool)     {}
func (nopDist) LeaseLost(string, int)              {}
func (nopDist) CommitAppended(string, string, int) {}
func (nopDist) ShardQuarantined(string, string)    {}

// LeaseClaimed implements DistRecorder by fanning out to every member
// that implements it.
func (m multi) LeaseClaimed(scope string, row int, stolen bool) {
	for _, r := range m {
		DistEvents(r).LeaseClaimed(scope, row, stolen)
	}
}

// LeaseLost implements DistRecorder.
func (m multi) LeaseLost(scope string, row int) {
	for _, r := range m {
		DistEvents(r).LeaseLost(scope, row)
	}
}

// CommitAppended implements DistRecorder.
func (m multi) CommitAppended(worker, scope string, row int) {
	for _, r := range m {
		DistEvents(r).CommitAppended(worker, scope, row)
	}
}

// ShardQuarantined implements DistRecorder.
func (m multi) ShardQuarantined(path, reason string) {
	for _, r := range m {
		DistEvents(r).ShardQuarantined(path, reason)
	}
}

// LeaseClaimed implements DistRecorder.
func (m *Metrics) LeaseClaimed(_ string, _ int, stolen bool) {
	m.LeasesClaimed.Inc()
	if stolen {
		m.LeasesStolen.Inc()
	}
}

// LeaseLost implements DistRecorder.
func (m *Metrics) LeaseLost(string, int) { m.LeasesLost.Inc() }

// CommitAppended implements DistRecorder.
func (m *Metrics) CommitAppended(string, string, int) { m.Commits.Inc() }

// ShardQuarantined implements DistRecorder.
func (m *Metrics) ShardQuarantined(string, string) { m.ShardsQuarantined.Inc() }

// LeaseClaimed implements DistRecorder by journaling a lease_claimed
// event.
func (j *JSONL) LeaseClaimed(scope string, row int, stolen bool) {
	j.emit(map[string]any{"t": "lease_claimed", "scope": scope, "row": row, "stolen": stolen})
}

// LeaseLost implements DistRecorder.
func (j *JSONL) LeaseLost(scope string, row int) {
	j.emit(map[string]any{"t": "lease_lost", "scope": scope, "row": row})
}

// CommitAppended implements DistRecorder.
func (j *JSONL) CommitAppended(worker, scope string, row int) {
	j.emit(map[string]any{"t": "commit", "worker": worker, "scope": scope, "row": row})
}

// ShardQuarantined implements DistRecorder.
func (j *JSONL) ShardQuarantined(path, reason string) {
	j.emit(map[string]any{"t": "shard_quarantined", "path": path, "reason": reason})
}
