package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestExit(t *testing.T) {
	wrapped := fmt.Errorf("campaign: %w", Usagef("unknown benchmark %q", "nope"))
	cases := []struct {
		name     string
		err      error
		wantCode int
		wantMsg  string // "" = nothing printed
	}{
		{"nil is success", nil, 0, ""},
		{"plain error", fmt.Errorf("simulation blew up"), 1, "pbrank: error: simulation blew up\n"},
		{"usage error", Usagef("unknown config %q", "fast"), 2, "pbrank: error: unknown config \"fast\"\n"},
		{"wrapped usage error keeps its code", wrapped, 2, "pbrank: error: campaign: unknown benchmark \"nope\"\n"},
		{"explicit exit code", &ExitError{Code: 3, Err: fmt.Errorf("three")}, 3, "pbrank: error: three\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if code := Exit(&buf, "pbrank", tc.err); code != tc.wantCode {
				t.Errorf("code = %d, want %d", code, tc.wantCode)
			}
			if got := buf.String(); got != tc.wantMsg {
				t.Errorf("stderr = %q, want %q", got, tc.wantMsg)
			}
		})
	}
}

func TestDistEvents(t *testing.T) {
	// A Metrics recorder counts dist events; a Nop (or nil) recorder
	// absorbs them; a Multi fans them out to dist-aware members only.
	m := NewMetrics()
	var sink bytes.Buffer
	j := NewJSONL(&sink)
	fan := Multi(m, j, Nop{})
	d := DistEvents(fan)
	d.LeaseClaimed("gzip", 3, false)
	d.LeaseClaimed("gzip", 4, true)
	d.LeaseLost("gzip", 4)
	d.CommitAppended("w1", "gzip", 3)
	d.ShardQuarantined("shards/w9.jsonl", "mid-file corruption")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := m.LeasesClaimed.Value(); got != 2 {
		t.Errorf("LeasesClaimed = %d, want 2", got)
	}
	if got := m.LeasesStolen.Value(); got != 1 {
		t.Errorf("LeasesStolen = %d, want 1", got)
	}
	if got := m.LeasesLost.Value(); got != 1 {
		t.Errorf("LeasesLost = %d, want 1", got)
	}
	if m.Commits.Value() != 1 || m.ShardsQuarantined.Value() != 1 {
		t.Errorf("commits/quarantined = %d/%d, want 1/1", m.Commits.Value(), m.ShardsQuarantined.Value())
	}
	for _, want := range []string{"lease_claimed", "lease_lost", "commit", "shard_quarantined"} {
		if !strings.Contains(sink.String(), fmt.Sprintf("%q", want)) {
			t.Errorf("JSONL journal missing %s event:\n%s", want, sink.String())
		}
	}
	// The summary table surfaces the dist line only when events exist.
	tbl := m.Summary("t").Table()
	if !strings.Contains(tbl, "2 leases (1 stolen, 1 lost), 1 commits, 1 quarantined shards") {
		t.Errorf("summary table missing dist line:\n%s", tbl)
	}
	if plain := NewMetrics().Summary("t").Table(); strings.Contains(plain, "dist") {
		t.Errorf("dist line printed for a campaign with no dist events:\n%s", plain)
	}
	// Nop and nil degrade to no-ops instead of panicking.
	DistEvents(Nop{}).LeaseClaimed("s", 0, false)
	DistEvents(nil).CommitAppended("w", "s", 0)
}

func TestRegisterCLIFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterCLIFlags(fs, "tool")
	if err := fs.Parse([]string{"-metrics", "m.jsonl", "-progress", "-debug-addr", "localhost:0"}); err != nil {
		t.Fatal(err)
	}
	if c.MetricsPath != "m.jsonl" || !c.Progress || c.DebugAddr != "localhost:0" {
		t.Errorf("flags not bound: %+v", c)
	}
}

func TestInertSession(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterCLIFlags(fs, "tool")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sess, err := c.Start(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Recorder() != nil {
		t.Error("inert session must hand the runner a nil recorder")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("inert session wrote output: %q", buf.String())
	}
}

func TestSessionMetricsAndSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	c := &CLIFlags{Tool: "tool", MetricsPath: path}
	var buf bytes.Buffer
	sess, err := c.Start(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := sess.Recorder()
	if rec == nil {
		t.Fatal("enabled session returned nil recorder")
	}
	rec.SuiteStarted("fp", 1, 3)
	rec.RunStarted("s", 3)
	rec.RowFinished("s", 0, 1, time.Millisecond, 1, false)
	rec.RowFinished("s", 1, 1, 0, 0, true)
	rec.RunFinished("s", 10*time.Millisecond)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 simulated + 1 resumed") {
		t.Errorf("summary table missing resumed/simulated split:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"t":"summary"`) {
		t.Errorf("metrics file missing summary event:\n%s", data)
	}
	// Close is idempotent.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionProgressLines(t *testing.T) {
	c := &CLIFlags{Tool: "tool", Progress: true, ProgressInterval: 5 * time.Millisecond}
	pr, pw := io.Pipe()
	defer pr.Close()
	lines := make(chan string, 64)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := pr.Read(buf)
			if n > 0 {
				lines <- string(buf[:n])
			}
			if err != nil {
				close(lines)
				return
			}
		}
	}()
	sess, err := c.Start(pw)
	if err != nil {
		t.Fatal(err)
	}
	rec := sess.Recorder()
	rec.SuiteStarted("fp", 1, 4)
	rec.RunStarted("s", 4)
	rec.RowFinished("s", 0, 1, time.Millisecond, 1, false)
	deadline := time.After(2 * time.Second)
	var got string
	for !strings.Contains(got, "rows") {
		select {
		case chunk := <-lines:
			got += chunk
		case <-deadline:
			t.Fatalf("no progress line within deadline; got %q", got)
		}
	}
	if !strings.Contains(got, "tool: 1/4 rows") {
		t.Errorf("progress line = %q, want it to report 1/4 rows", got)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	pw.Close()
}

func TestDebugServer(t *testing.T) {
	m := NewMetrics()
	m.RowFinished("s", 0, 1, time.Millisecond, 1, false)
	d, err := ServeDebug("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	var payload map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &payload); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if _, ok := payload["pbsim"]; !ok {
		t.Errorf("/debug/vars missing pbsim variable: %s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index looks wrong: %.200s", idx)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.256.256.256:99999", nil); err == nil {
		t.Fatal("expected bind error")
	}
}
