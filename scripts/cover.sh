#!/usr/bin/env bash
# cover.sh — run the test suite with coverage, print a per-package
# summary, and enforce per-package floors on the packages whose
# correctness the campaign engine leans on hardest.
#
# Usage: scripts/cover.sh [output-profile]
set -euo pipefail

profile="${1:-coverage.out}"

# Floors (percent). Raise them as coverage grows; never lower them to
# make a failing build pass — write the missing test instead.
declare -A floors=(
	["pbsim/internal/obs"]=80
	["pbsim/internal/stats"]=95
	["pbsim/internal/runner"]=75
	["pbsim/internal/perfbench"]=80
	["pbsim/internal/analysis"]=80
	["pbsim/internal/analysis/flow"]=85
	["pbsim/internal/analysis/rules"]=85
	["pbsim/internal/truth"]=85
	["pbsim/internal/assess"]=80
	["pbsim/internal/sampling"]=80
)

go test -covermode=atomic -coverprofile="$profile" ./... | tee /tmp/cover-packages.txt

echo
echo "== per-package coverage =="
fail=0
while read -r line; do
	pkg=$(awk '{print $2}' <<<"$line")
	pct=$(grep -o 'coverage: [0-9.]*%' <<<"$line" | grep -o '[0-9.]*' || true)
	[[ -z "$pct" ]] && continue
	floor="${floors[$pkg]:-}"
	if [[ -n "$floor" ]]; then
		if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
			echo "FAIL  $pkg  ${pct}% (floor ${floor}%)"
			fail=1
		else
			echo "ok    $pkg  ${pct}% (floor ${floor}%)"
		fi
	else
		echo "      $pkg  ${pct}%"
	fi
done < <(grep '^ok' /tmp/cover-packages.txt)

echo
go tool cover -func="$profile" | tail -n 1

if [[ $fail -ne 0 ]]; then
	echo "coverage floor violated" >&2
	exit 1
fi
