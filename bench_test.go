// Package pbsim's benchmark harness regenerates every table of the
// paper (there are no figures) at benchmark scale: each BenchmarkTableN
// drives the same code path as the corresponding cmd tool, scaled down
// so a full -bench=. sweep stays laptop-sized. The cmd tools
// (pbdesign, pbrank, pbclassify, pbenhance, tablegen) produce the
// full-size tables.
package pbsim

import (
	"fmt"
	"testing"

	"pbsim/internal/cluster"
	"pbsim/internal/enhance"
	"pbsim/internal/experiment"
	"pbsim/internal/methodology"
	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
	"pbsim/internal/report"
	"pbsim/internal/sim"
	"pbsim/internal/stats"
	"pbsim/internal/trace"
	"pbsim/internal/workload"
)

// benchInstr and benchWarmup scale the simulation benchmarks.
const (
	benchInstr  = 3000
	benchWarmup = 2000
)

func benchWorkloads(b *testing.B, names ...string) []workload.Workload {
	b.Helper()
	var ws []workload.Workload
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// BenchmarkTable1DesignCost regenerates the design-cost comparison.
func BenchmarkTable1DesignCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := report.DesignCost(43); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2DesignX8 regenerates and verifies the X=8 matrix.
func BenchmarkTable2DesignX8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := pb.NewWithSize(8, false)
		if err != nil {
			b.Fatal(err)
		}
		if err := pb.Verify(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Foldover regenerates and verifies the X=8 foldover
// matrix.
func BenchmarkTable3Foldover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := pb.NewWithSize(8, true)
		if err != nil {
			b.Fatal(err)
		}
		if err := pb.Verify(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Effects recomputes the worked example's effects.
func BenchmarkTable4Effects(b *testing.B) {
	d, err := pb.NewWithSize(8, false)
	if err != nil {
		b.Fatal(err)
	}
	responses := []float64{1, 9, 74, 28, 3, 6, 112, 84}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		effects, err := pb.Effects(d, responses)
		if err != nil {
			b.Fatal(err)
		}
		if !stats.ApproxEqual(effects[5], -225, 0) {
			b.Fatalf("effect F = %g", effects[5])
		}
	}
}

// BenchmarkTable5Workloads builds the full benchmark roster, including
// every synthetic generator's static structure.
func BenchmarkTable5Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workload.All() {
			if _, err := w.NewGenerator(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable6to8Config maps PB levels onto full processor
// configurations (the Tables 6-8 value assignment).
func BenchmarkTable6to8Config(b *testing.B) {
	design, err := pb.New(41, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < design.Runs(); r++ {
			cfg := sim.ConfigForLevels(design.Row(r))
			if err := cfg.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable9PBRanking runs the full X=44 foldover PB experiment
// (88 simulated configurations) over a two-benchmark slice of the
// suite at reduced instruction counts.
func BenchmarkTable9PBRanking(b *testing.B) {
	ws := benchWorkloads(b, "gzip", "mcf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite, err := experiment.RunSuite(experiment.Options{
			Instructions: benchInstr,
			Warmup:       benchWarmup,
			Foldover:     true,
			Workloads:    ws,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(suite.Order) != 43 {
			b.Fatal("bad suite")
		}
	}
}

// BenchmarkTable10Distances computes the 13x13 benchmark distance
// matrix from the published Table 9 ranks.
func BenchmarkTable10Distances(b *testing.B) {
	vecs := paperdata.RankVectors(paperdata.Table9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := cluster.DistanceMatrix(paperdata.Benchmarks, vecs)
		if err != nil {
			b.Fatal(err)
		}
		if m.At(0, 1) < 89 || m.At(0, 1) > 90 {
			b.Fatalf("gzip-vprPlace distance %g", m.At(0, 1))
		}
	}
}

// BenchmarkTable11Groups thresholds the distance matrix into the
// paper's benchmark groups.
func BenchmarkTable11Groups(b *testing.B) {
	m, err := cluster.DistanceMatrix(paperdata.Benchmarks, paperdata.RankVectors(paperdata.Table9))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := cluster.ThresholdGroups(m, paperdata.Threshold)
		if len(groups) != 8 {
			b.Fatalf("%d groups, paper has 8", len(groups))
		}
	}
}

// BenchmarkTable12Enhanced runs the before/after enhancement analysis
// (instruction precomputation, 128-entry table) on one benchmark.
func BenchmarkTable12Enhanced(b *testing.B) {
	ws := benchWorkloads(b, "gzip")
	freq, err := enhance.Profile(ws[0].Params, benchWarmup+benchInstr)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := experiment.Options{
			Instructions: benchInstr,
			Warmup:       benchWarmup,
			Foldover:     true,
			Workloads:    ws,
		}
		before, err := experiment.RunSuite(opts)
		if err != nil {
			b.Fatal(err)
		}
		opts.Shortcut = func(workload.Workload) (sim.ComputeShortcut, error) {
			return enhance.NewPrecomputation(freq, 128)
		}
		after, err := experiment.RunSuite(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := methodology.CompareEnhancement(before, after); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFoldover contrasts the basic X-run design with the
// paper's recommended 2X foldover on the same workload: the foldover
// doubles the simulation cost to buy interaction-free main effects.
func BenchmarkAblationFoldover(b *testing.B) {
	ws := benchWorkloads(b, "gzip")
	for _, foldover := range []bool{false, true} {
		b.Run(fmt.Sprintf("foldover=%v", foldover), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunSuite(experiment.Options{
					Instructions: benchInstr,
					Warmup:       benchWarmup,
					Foldover:     foldover,
					Workloads:    ws,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOneAtATime runs the N+1-simulation single-parameter
// design the paper argues against, for cost comparison with the PB
// benchmarks above.
func BenchmarkAblationOneAtATime(b *testing.B) {
	ws := benchWorkloads(b, "gzip")
	resp, respErr := experiment.Response(ws[0], benchWarmup, benchInstr, nil).Infallible()
	defer func() {
		if err := respErr(); err != nil {
			b.Fatal(err)
		}
	}()
	base := make([]int8, 41)
	for i := range base {
		base[i] = -1
	}
	wrapped := func(levels []int8) float64 {
		lv := make([]pb.Level, len(levels))
		for i, l := range levels {
			lv[i] = pb.Level(l)
		}
		return resp(lv)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.OneAtATime(base, wrapped); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationValueRange quantifies the paper's Section 2.2
// warning: the apparent effect of a parameter scales with the width of
// its chosen low/high range (here the ROB at the paper's 8..64 range
// versus a too-narrow 16..32 range).
func BenchmarkAblationValueRange(b *testing.B) {
	ws := benchWorkloads(b, "gzip")
	for _, rng := range []struct {
		name      string
		low, high int
	}{{"paper-8-64", 8, 64}, {"narrow-16-32", 16, 32}} {
		b.Run(rng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lowCfg := sim.Default()
				lowCfg.ROBEntries = rng.low
				highCfg := sim.Default()
				highCfg.ROBEntries = rng.high
				var cycles [2]int64
				for j, cfg := range []sim.Config{lowCfg, highCfg} {
					gen, err := ws[0].NewGenerator()
					if err != nil {
						b.Fatal(err)
					}
					cpu, err := sim.New(cfg, gen, nil)
					if err != nil {
						b.Fatal(err)
					}
					cpu.PrewarmMemory()
					st, err := cpu.RunWithWarmup(benchWarmup, benchInstr)
					if err != nil {
						b.Fatal(err)
					}
					cycles[j] = st.Cycles
				}
				if cycles[1] > cycles[0] {
					b.Fatalf("larger ROB slower: %v", cycles)
				}
			}
		})
	}
}

// BenchmarkAblationTraceLength measures rank stability across trace
// lengths: the same PB experiment at 1x and 3x the instruction budget.
func BenchmarkAblationTraceLength(b *testing.B) {
	ws := benchWorkloads(b, "twolf")
	for _, scale := range []int64{1, 3} {
		b.Run(fmt.Sprintf("instr=%d", scale*benchInstr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunSuite(experiment.Options{
					Instructions: scale * benchInstr,
					Warmup:       benchWarmup,
					Foldover:     true,
					Workloads:    ws,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (simulated instructions per wall-clock second) on the default
// configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := w.NewGenerator()
		if err != nil {
			b.Fatal(err)
		}
		cpu, err := sim.New(sim.Default(), gen, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cpu.Run(10000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*10000/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkTraceGeneration measures the synthetic stream generator.
func BenchmarkTraceGeneration(b *testing.B) {
	w, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := w.NewGenerator()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink trace.Instr
	for i := 0; i < b.N; i++ {
		sink = gen.Next()
	}
	_ = sink
}

// BenchmarkDesignX44 constructs and verifies the paper's X=44 foldover
// design.
func BenchmarkDesignX44(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := pb.New(43, true)
		if err != nil {
			b.Fatal(err)
		}
		if d.Runs() != 88 {
			b.Fatal("bad design")
		}
	}
}

// BenchmarkEffectsX44 computes effects and ranks for an 88-run design.
func BenchmarkEffectsX44(b *testing.B) {
	d, err := pb.New(43, true)
	if err != nil {
		b.Fatal(err)
	}
	responses := make([]float64, d.Runs())
	for i := range responses {
		responses[i] = float64(i * 37 % 101)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		effects, err := pb.Effects(d, responses)
		if err != nil {
			b.Fatal(err)
		}
		pb.Ranks(effects)
	}
}
