GO ?= go

# Pinned benchmark repetition counts: -benchtime in iterations (not
# seconds) keeps the measured work identical across machines, and
# -count repetitions give pbbench enough samples for its confidence
# intervals. BENCH_0.json was captured with exactly these settings;
# regenerate it with `make bench-baseline` after intentional
# performance changes.
BENCHTIME ?= 2x
BENCHCOUNT ?= 5
BENCHFLAGS = -run='^$$' -bench=. -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) .

.PHONY: all build vet fmt-check lint lint-new lint-baseline test race race-hammer short bench bench-baseline bench-check check cover chaos assess frontier

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) when any file diverges from
# gofmt; it never rewrites anything, so it is safe as a CI gate.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# pbcheck is the repository's own stdlib-only static-analysis suite
# (see internal/analysis): determinism, nopanic, floateq, errdiscard,
# ctxflow, hotalloc, locksafe, leakygo, purity, lockflow, errflow,
# racecheck, chansafe — interprocedural via a module-wide call-graph
# fact fixpoint plus an Andersen points-to/escape solve, with the last
# four flow-sensitive over a per-function CFG. Exit 1 means an
# unsuppressed finding; waivers need a reasoned //pbcheck:ignore.
lint:
	$(GO) run ./cmd/pbcheck ./...

# lint-new is the findings ratchet: it fails only on findings whose
# position-independent fingerprint (rule + package + function +
# message) is absent from the committed baseline, so new debt is
# blocked while recorded debt stays visible without breaking builds.
lint-new:
	$(GO) run ./cmd/pbcheck -baseline pbcheck-baseline.json ./...

# lint-baseline refreshes the committed baseline. Only run it after
# deliberately accepting a finding as recorded debt — the reviewed
# diff of pbcheck-baseline.json IS the acceptance.
lint-baseline:
	$(GO) run ./cmd/pbcheck -write-baseline pbcheck-baseline.json ./...

test:
	$(GO) test ./...

# The runner's concurrency tests (cancellation draining, checkpoint
# contention, worker-pool scheduling) must pass under the race
# detector; this is the CI gate.
race:
	$(GO) test -race ./...

# race-hammer is the dynamic complement to the static racecheck rule:
# it repeats the concurrent substrate's tests (runner fan-out,
# distributed leases/ledgers, observability, sampling) under the race
# detector with -count=3 so scheduling-dependent interleavings that a
# single pass can miss get three chances to bite. The log lands in
# $(RACE_ARTIFACTS) and is uploaded by the CI race-hammer job.
RACE_ARTIFACTS ?= out/race-hammer
race-hammer:
	mkdir -p $(RACE_ARTIFACTS)
	$(GO) test -race -count=3 ./internal/runner/... ./internal/obs/ ./internal/sampling/ 2>&1 | tee $(RACE_ARTIFACTS)/race.log
	@! grep -qE '^(FAIL|--- FAIL)|WARNING: DATA RACE' $(RACE_ARTIFACTS)/race.log || { echo "race-hammer: failures in $(RACE_ARTIFACTS)/race.log"; exit 1; }

short:
	$(GO) test -short ./...

# chaos drives the kill/restart/resume loop of the distributed
# execution layer under the race detector: workers die at injected
# crash points, leases expire and are stolen, shard ledgers are torn
# mid-line — and the merged campaign must render Table 9 byte-identical
# to a sequential run. Artifacts (convergence log, merged ledger and
# table) land in $(CHAOS_ARTIFACTS).
CHAOS_ARTIFACTS ?= out/chaos
chaos:
	mkdir -p $(CHAOS_ARTIFACTS)
	CHAOS_ARTIFACTS=$(abspath $(CHAOS_ARTIFACTS)) $(GO) test -race -count=1 -run Chaos -v ./internal/runner/dist/ | tee $(CHAOS_ARTIFACTS)/chaos.log

# bench runs the pinned benchmark sweep and summarizes it into a
# BENCH_ci.json trajectory (median + confidence interval per metric).
bench:
	$(GO) test $(BENCHFLAGS) | tee bench.txt
	$(GO) run ./cmd/pbbench run -input bench.txt -rev ci -out BENCH_ci.json

# bench-baseline refreshes the committed baseline trajectory. Only run
# it after an intentional, explained performance change, on the same
# class of machine the old baseline came from (trajectories are
# machine-relative).
bench-baseline:
	$(GO) test $(BENCHFLAGS) | tee bench.txt
	$(GO) run ./cmd/pbbench run -input bench.txt -rev 0 -out BENCH_0.json

# bench-check is the regression gate: fresh run vs committed baseline,
# non-zero exit when any metric regresses beyond the threshold.
bench-check: bench
	$(GO) run ./cmd/pbbench check -threshold 10% BENCH_0.json BENCH_ci.json

# Coverage profile plus a per-package summary; enforces floors for the
# packages the campaign engine leans on hardest (obs, stats, runner).
cover:
	bash scripts/cover.sh coverage.out

# frontier measures the accuracy-vs-speed frontier of sampled
# simulation at full Table 9 scale (13 benchmarks, 88 configurations,
# 100k instructions/run): full suite as ground truth, then each
# estimator with the tuned sampling spec. pbfrontier exits non-zero
# when any estimator's Spearman rank correlation against the full
# ordering falls below 0.95, which is the CI gate. Artifacts (text,
# JSON, markdown step summary, perfbench trajectory) land in
# $(FRONTIER_ARTIFACTS).
FRONTIER_ARTIFACTS ?= out/frontier
FRONTIER_FLAGS ?= -n 100000 -warmup 30000 -region 2000 -frac 0.08 -func-warmup 24000 -seed 1
frontier:
	mkdir -p $(FRONTIER_ARTIFACTS)
	$(GO) run ./cmd/pbfrontier $(FRONTIER_FLAGS) \
		-json-out $(FRONTIER_ARTIFACTS)/frontier.json \
		-md-out $(FRONTIER_ARTIFACTS)/frontier.md \
		-bench-out $(FRONTIER_ARTIFACTS)/BENCH_frontier.json \
		| tee $(FRONTIER_ARTIFACTS)/frontier.txt

# assess runs the methodology shoot-out: PB, foldover PB,
# one-at-a-time, and the full factorial screened against synthetic
# ground-truth surfaces, scored for rank recovery and critical-set
# recall. The seeded smoke campaign is small enough for CI; the trust
# report (text + JSON artifact) lands in $(ASSESS_ARTIFACTS). The
# output is bit-identical for any worker count.
ASSESS_ARTIFACTS ?= out/assess
ASSESS_FLAGS ?= -n 40 -k 9 -critical 3 -snr 10 -seed 1
assess:
	mkdir -p $(ASSESS_ARTIFACTS)
	$(GO) run ./cmd/pbassess $(ASSESS_FLAGS) -json-out $(ASSESS_ARTIFACTS)/trust.json | tee $(ASSESS_ARTIFACTS)/trust.txt

check: build vet fmt-check lint lint-new race
