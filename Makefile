GO ?= go

.PHONY: all build vet test race short bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The runner's concurrency tests (cancellation draining, checkpoint
# contention, worker-pool scheduling) must pass under the race
# detector; this is the CI gate.
race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

check: build vet race
