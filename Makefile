GO ?= go

.PHONY: all build vet lint test race short bench check cover

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# pbcheck is the repository's own stdlib-only static-analysis suite
# (see internal/analysis): determinism, nopanic, floateq, errdiscard,
# ctxflow. Exit 1 means an unsuppressed finding; waivers need a
# reasoned //pbcheck:ignore.
lint:
	$(GO) run ./cmd/pbcheck ./...

test:
	$(GO) test ./...

# The runner's concurrency tests (cancellation draining, checkpoint
# contention, worker-pool scheduling) must pass under the race
# detector; this is the CI gate.
race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Coverage profile plus a per-package summary; enforces floors for the
# packages the campaign engine leans on hardest (obs, stats, runner).
cover:
	bash scripts/cover.sh coverage.out

check: build vet lint race
