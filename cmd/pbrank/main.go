// Command pbrank reproduces Table 9 of the paper: it runs the X=44
// foldover Plackett-Burman design (88 processor configurations) over
// the 13-benchmark synthetic suite, ranks every parameter per
// benchmark by the magnitude of its effect on execution time, and
// sorts the parameters by their sum of ranks.
//
// Usage:
//
//	pbrank [-n 100000] [-warmup 30000] [-benchmarks gzip,mcf,...] [-compare] [-gap]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pbsim/internal/experiment"
	"pbsim/internal/methodology"
	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
	"pbsim/internal/report"
	"pbsim/internal/workload"
)

func main() {
	n := flag.Int64("n", experiment.DefaultInstructions, "instructions measured per configuration")
	warmup := flag.Int64("warmup", experiment.DefaultWarmup, "warmup instructions per configuration")
	benchList := flag.String("benchmarks", "", "comma-separated subset of benchmarks (default: all 13)")
	compare := flag.Bool("compare", false, "print the measured ordering next to the paper's Table 9 sums")
	gap := flag.Bool("gap", false, "report the significance gap (the paper's 'first ten parameters' cut)")
	pov := flag.Bool("pov", false, "print percent-of-variation dominance per benchmark (exposes what ranks hide)")
	stability := flag.Bool("stability", false, "print leave-one-benchmark-out stability of the ordering")
	par := flag.Int("par", 0, "parallel simulations (default GOMAXPROCS)")
	csvRanks := flag.String("csv", "", "also write the rank matrix to this CSV file")
	csvRaw := flag.String("csv-raw", "", "also write raw per-configuration cycle counts to this CSV file")
	flag.Parse()

	ws, err := selectWorkloads(*benchList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbrank: %v\n", err)
		os.Exit(1)
	}
	suite, err := experiment.RunSuite(experiment.Options{
		Instructions: *n,
		Warmup:       *warmup,
		Foldover:     true,
		Parallelism:  *par,
		Workloads:    ws,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbrank: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(report.RankTable(suite,
		fmt.Sprintf("Table 9: Plackett and Burman Design Results (X=%d foldover, %d configurations, %d instructions/run)",
			suite.Design.X, suite.Design.Runs(), *n)))
	if *compare {
		fmt.Println(report.RankTableWithPaper(suite, paperdata.Table9,
			"Measured ordering vs the paper's published Table 9"))
	}
	if *gap {
		cut := pb.SignificanceGap(suite.Sums)
		fmt.Printf("Significance gap after the top %d parameters (paper: 10).\n", cut)
	}
	if *pov {
		out, err := report.DominanceTable(suite, 5)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbrank: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *csvRanks != "" {
		if err := writeCSV(*csvRanks, suite, experiment.WriteRanksCSV); err != nil {
			fmt.Fprintf(os.Stderr, "pbrank: %v\n", err)
			os.Exit(1)
		}
	}
	if *csvRaw != "" {
		if err := writeCSV(*csvRaw, suite, experiment.WriteResponsesCSV); err != nil {
			fmt.Fprintf(os.Stderr, "pbrank: %v\n", err)
			os.Exit(1)
		}
	}
	if *stability {
		rep, err := methodology.Jackknife(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbrank: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Leave-one-benchmark-out stability (position envelope per factor):")
		for _, fs := range rep.ByFullPosition() {
			fmt.Printf("  %2d. %-35s positions %d..%d (spread %d)\n",
				fs.FullPosition, fs.Factor.Name, fs.MinPosition, fs.MaxPosition, fs.Spread)
		}
	}
}

func selectWorkloads(list string) ([]workload.Workload, error) {
	if list == "" {
		return nil, nil // all
	}
	var ws []workload.Workload
	for _, name := range strings.Split(list, ",") {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// writeCSV writes one CSV view of the suite to a file.
func writeCSV(path string, suite *pb.Suite, fn func(w io.Writer, s *pb.Suite) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fn(f, suite); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return f.Close()
}
