// Command pbrank reproduces Table 9 of the paper: it runs the X=44
// foldover Plackett-Burman design (88 processor configurations) over
// the 13-benchmark synthetic suite, ranks every parameter per
// benchmark by the magnitude of its effect on execution time, and
// sorts the parameters by their sum of ranks.
//
// The suite is fault tolerant: -timeout bounds each configuration,
// -retries re-runs failed configurations with capped backoff, and
// -checkpoint journals completed configurations to a JSONL file so an
// interrupted run (Ctrl-C included) resumes exactly where it stopped.
//
// Observability: -metrics journals run events to a JSONL file keyed
// by the experiment fingerprint, -progress prints live progress lines
// and an end-of-run summary (rows/s, latency quantiles, retry and
// fault totals, resumed vs simulated rows), and -debug-addr serves
// expvar and pprof while the campaign runs.
//
// Usage:
//
//	pbrank [-n 100000] [-warmup 30000] [-benchmarks gzip,mcf,...]
//	       [-timeout 0] [-retries 0] [-checkpoint suite.jsonl]
//	       [-workers 4] [-shard-dir campaign/] [-shard-sync]
//	       [-sample uniform] [-sample-region 1000] [-sample-frac 0.1]
//	       [-sample-warmup -1] [-sample-func-warmup -1] [-sample-seed 1]
//	       [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
//	       [-compare] [-gap]
//
// Sampled mode (-sample) replaces each full measurement with a
// region-sampled estimate (internal/sampling): every configuration
// detail-simulates only a seeded, deterministic subset of the measured
// window, cutting detailed instructions by roughly 1/-sample-frac
// while preserving the Table 9 ordering (the pbfrontier tool gates
// exactly that). The sampling spec is part of the experiment
// fingerprint and of distributed campaign manifests, so checkpoints
// never mix sampled and full rows and pbworker processes reconstruct
// the identical schedule.
//
// Distributed mode (-workers / -shard-dir) runs the campaign through
// the crash-safe execution layer: workers claim configuration ×
// benchmark units via lease files and commit to per-worker shard
// ledgers, so killed or crashed workers lose nothing committed, and
// rerunning with the same -shard-dir resumes. Point pbworker
// processes (other machines included, over a shared filesystem) at
// the same directory to scale out; the merged Table 9 is
// bit-identical to a sequential run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pbsim/internal/experiment"
	"pbsim/internal/methodology"
	"pbsim/internal/obs"
	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
	"pbsim/internal/report"
	"pbsim/internal/runner"
	"pbsim/internal/runner/dist"
	"pbsim/internal/sampling"
	"pbsim/internal/workload"
)

func main() {
	os.Exit(obs.Exit(os.Stderr, "pbrank", run()))
}

func run() (err error) {
	n := flag.Int64("n", experiment.DefaultInstructions, "instructions measured per configuration")
	warmup := flag.Int64("warmup", experiment.DefaultWarmup, "warmup instructions per configuration")
	benchList := flag.String("benchmarks", "", "comma-separated subset of benchmarks (default: all 13)")
	compare := flag.Bool("compare", false, "print the measured ordering next to the paper's Table 9 sums")
	gap := flag.Bool("gap", false, "report the significance gap (the paper's 'first ten parameters' cut)")
	pov := flag.Bool("pov", false, "print percent-of-variation dominance per benchmark (exposes what ranks hide)")
	stability := flag.Bool("stability", false, "print leave-one-benchmark-out stability of the ordering")
	par := flag.Int("par", 0, "parallel simulations (default GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-configuration timeout (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed configuration")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file; an interrupted run resumes from it")
	verbose := flag.Bool("v", false, "log retries and checkpoint restores")
	csvRanks := flag.String("csv", "", "also write the rank matrix to this CSV file")
	csvRaw := flag.String("csv-raw", "", "also write raw per-configuration cycle counts to this CSV file")
	workers := flag.Int("workers", 0, "run the campaign through N crash-safe in-process workers (distributed mode)")
	shardDir := flag.String("shard-dir", "", "campaign directory for distributed mode; share it with pbworker processes to scale out, rerun with it to resume")
	shardSync := flag.Bool("shard-sync", false, "fsync shard ledgers after every commit in distributed mode")
	sampleFlags := sampling.RegisterFlags(flag.CommandLine)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine, "pbrank")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	ws, err := selectWorkloads(*benchList)
	if err != nil {
		return obs.Usagef("%v", err)
	}
	sampleSpec, err := sampleFlags()
	if err != nil {
		return obs.Usagef("%v", err)
	}
	opts := experiment.Options{
		Instructions: *n,
		Warmup:       *warmup,
		Foldover:     true,
		Parallelism:  *par,
		Workloads:    ws,
		Timeout:      *timeout,
		Retries:      *retries,
		Checkpoint:   *checkpoint,
		Recorder:     sess.Recorder(),
		Sampling:     sampleSpec,
	}
	if *verbose {
		opts.OnRetry = func(scope string, row, attempt int, delay time.Duration, err error) {
			fmt.Fprintf(os.Stderr, "pbrank: retrying %s row %d (attempt %d, in %v): %v\n", scope, row, attempt, delay, err)
		}
		opts.OnRow = func(scope string, row int, _ float64, fromCheckpoint bool) {
			if fromCheckpoint {
				fmt.Fprintf(os.Stderr, "pbrank: %s row %d restored from checkpoint\n", scope, row)
			}
		}
	}
	var suite *pb.Suite
	if *workers > 0 || *shardDir != "" {
		if *checkpoint != "" {
			return obs.Usagef("-checkpoint is the sequential resume path; distributed mode resumes from -shard-dir itself")
		}
		suite, err = runDistributed(ctx, opts, *workers, *shardDir, *shardSync)
	} else {
		suite, err = experiment.RunSuiteCtx(ctx, opts)
	}
	if err != nil {
		if runner.Cancelled(err) && *checkpoint != "" {
			return fmt.Errorf("%w (completed configurations are saved; rerun with -checkpoint %s to resume)", err, *checkpoint)
		}
		return err
	}
	title := fmt.Sprintf("Table 9: Plackett and Burman Design Results (X=%d foldover, %d configurations, %d instructions/run)",
		suite.Design.X, suite.Design.Runs(), *n)
	if sampleSpec != nil {
		title += fmt.Sprintf("\nsampled responses: %s", sampleSpec)
	}
	fmt.Println(report.RankTable(suite, title))
	if *compare {
		fmt.Println(report.RankTableWithPaper(suite, paperdata.Table9,
			"Measured ordering vs the paper's published Table 9"))
	}
	if *gap {
		cut := pb.SignificanceGap(suite.Sums)
		fmt.Printf("Significance gap after the top %d parameters (paper: 10).\n", cut)
	}
	if *pov {
		out, err := report.DominanceTable(suite, 5)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if *csvRanks != "" {
		if err := writeCSV(*csvRanks, suite, experiment.WriteRanksCSV); err != nil {
			return err
		}
	}
	if *csvRaw != "" {
		if err := writeCSV(*csvRaw, suite, experiment.WriteResponsesCSV); err != nil {
			return err
		}
	}
	if *stability {
		rep, err := methodology.Jackknife(suite)
		if err != nil {
			return err
		}
		fmt.Println("Leave-one-benchmark-out stability (position envelope per factor):")
		for _, fs := range rep.ByFullPosition() {
			fmt.Printf("  %2d. %-35s positions %d..%d (spread %d)\n",
				fs.FullPosition, fs.Factor.Name, fs.MinPosition, fs.MaxPosition, fs.Spread)
		}
	}
	return nil
}

// runDistributed executes the campaign through the crash-safe
// distributed layer (internal/runner/dist): N in-process workers
// claim (configuration × benchmark) units from the campaign
// directory via leases and commit to per-worker shard ledgers, then
// the merge proves the vectors complete and consistent and the suite
// is assembled from them — bit-identical to the sequential path.
// External pbworker processes pointed at the same -shard-dir join the
// same campaign; a killed run resumes by rerunning with the same
// flags and -shard-dir.
func runDistributed(ctx context.Context, opts experiment.Options, workers int, dir string, shardSync bool) (*pb.Suite, error) {
	if workers <= 0 {
		workers = 1
	}
	ephemeral := false
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "pbrank-campaign-"); err != nil {
			return nil, err
		}
		ephemeral = true
		defer os.RemoveAll(dir) //pbcheck:ignore errdiscard best-effort cleanup of an ephemeral campaign dir
	}
	man, err := experiment.CampaignManifest(opts)
	if err != nil {
		return nil, err
	}
	c, err := dist.Create(dir, man)
	if err != nil {
		return nil, err
	}
	task, err := experiment.CampaignTask(opts, c.Manifest())
	if err != nil {
		return nil, err
	}
	host, herr := os.Hostname()
	if herr != nil {
		host = "pbrank"
	}
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		//pbcheck:ignore leakygo worker goroutines terminate via ctx cancellation inside RunWorker and are joined by the errs receive loop below
		go func(w int) {
			_, err := dist.RunWorker(ctx, dir, task, dist.Config{
				ID:   fmt.Sprintf("%s-%d-w%d", host, os.Getpid(), w),
				Sync: shardSync,
				Runner: runner.Config{
					Timeout: opts.Timeout,
					Retries: opts.Retries,
					Backoff: opts.Backoff,
					OnRow:   opts.OnRow,
					OnRetry: opts.OnRetry,
				},
				Recorder: opts.Recorder,
			})
			errs <- err
		}(w)
	}
	var firstErr error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		if runner.Cancelled(firstErr) && !ephemeral {
			return nil, fmt.Errorf("%w (committed units are durable; rerun with -shard-dir %s to resume)", firstErr, dir)
		}
		return nil, firstErr
	}
	res, err := c.Merge(opts.Recorder)
	if err != nil {
		return nil, err
	}
	if !res.Complete() {
		return nil, fmt.Errorf("campaign incomplete: %d units missing; rerun with -shard-dir %s to resume", len(res.Missing), dir)
	}
	return experiment.SuiteFromMerge(opts, res)
}

func selectWorkloads(list string) ([]workload.Workload, error) {
	if list == "" {
		return nil, nil // all
	}
	var ws []workload.Workload
	for _, name := range strings.Split(list, ",") {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// writeCSV writes one CSV view of the suite to a file.
func writeCSV(path string, suite *pb.Suite, fn func(w io.Writer, s *pb.Suite) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//pbcheck:ignore errdiscard error-path cleanup only; the success path checks the Close below
	defer f.Close()
	if err := fn(f, suite); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return f.Close()
}
