// Command pbrank reproduces Table 9 of the paper: it runs the X=44
// foldover Plackett-Burman design (88 processor configurations) over
// the 13-benchmark synthetic suite, ranks every parameter per
// benchmark by the magnitude of its effect on execution time, and
// sorts the parameters by their sum of ranks.
//
// The suite is fault tolerant: -timeout bounds each configuration,
// -retries re-runs failed configurations with capped backoff, and
// -checkpoint journals completed configurations to a JSONL file so an
// interrupted run (Ctrl-C included) resumes exactly where it stopped.
//
// Observability: -metrics journals run events to a JSONL file keyed
// by the experiment fingerprint, -progress prints live progress lines
// and an end-of-run summary (rows/s, latency quantiles, retry and
// fault totals, resumed vs simulated rows), and -debug-addr serves
// expvar and pprof while the campaign runs.
//
// Usage:
//
//	pbrank [-n 100000] [-warmup 30000] [-benchmarks gzip,mcf,...]
//	       [-timeout 0] [-retries 0] [-checkpoint suite.jsonl]
//	       [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
//	       [-compare] [-gap]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pbsim/internal/experiment"
	"pbsim/internal/methodology"
	"pbsim/internal/obs"
	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
	"pbsim/internal/report"
	"pbsim/internal/runner"
	"pbsim/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "pbrank: error: %v\n", err)
		os.Exit(1)
	}
}

func run() (err error) {
	n := flag.Int64("n", experiment.DefaultInstructions, "instructions measured per configuration")
	warmup := flag.Int64("warmup", experiment.DefaultWarmup, "warmup instructions per configuration")
	benchList := flag.String("benchmarks", "", "comma-separated subset of benchmarks (default: all 13)")
	compare := flag.Bool("compare", false, "print the measured ordering next to the paper's Table 9 sums")
	gap := flag.Bool("gap", false, "report the significance gap (the paper's 'first ten parameters' cut)")
	pov := flag.Bool("pov", false, "print percent-of-variation dominance per benchmark (exposes what ranks hide)")
	stability := flag.Bool("stability", false, "print leave-one-benchmark-out stability of the ordering")
	par := flag.Int("par", 0, "parallel simulations (default GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-configuration timeout (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed configuration")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file; an interrupted run resumes from it")
	verbose := flag.Bool("v", false, "log retries and checkpoint restores")
	csvRanks := flag.String("csv", "", "also write the rank matrix to this CSV file")
	csvRaw := flag.String("csv-raw", "", "also write raw per-configuration cycle counts to this CSV file")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine, "pbrank")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	ws, err := selectWorkloads(*benchList)
	if err != nil {
		return err
	}
	opts := experiment.Options{
		Instructions: *n,
		Warmup:       *warmup,
		Foldover:     true,
		Parallelism:  *par,
		Workloads:    ws,
		Timeout:      *timeout,
		Retries:      *retries,
		Checkpoint:   *checkpoint,
		Recorder:     sess.Recorder(),
	}
	if *verbose {
		opts.OnRetry = func(scope string, row, attempt int, delay time.Duration, err error) {
			fmt.Fprintf(os.Stderr, "pbrank: retrying %s row %d (attempt %d, in %v): %v\n", scope, row, attempt, delay, err)
		}
		opts.OnRow = func(scope string, row int, _ float64, fromCheckpoint bool) {
			if fromCheckpoint {
				fmt.Fprintf(os.Stderr, "pbrank: %s row %d restored from checkpoint\n", scope, row)
			}
		}
	}
	suite, err := experiment.RunSuiteCtx(ctx, opts)
	if err != nil {
		if runner.Cancelled(err) && *checkpoint != "" {
			return fmt.Errorf("%w (completed configurations are saved; rerun with -checkpoint %s to resume)", err, *checkpoint)
		}
		return err
	}
	fmt.Println(report.RankTable(suite,
		fmt.Sprintf("Table 9: Plackett and Burman Design Results (X=%d foldover, %d configurations, %d instructions/run)",
			suite.Design.X, suite.Design.Runs(), *n)))
	if *compare {
		fmt.Println(report.RankTableWithPaper(suite, paperdata.Table9,
			"Measured ordering vs the paper's published Table 9"))
	}
	if *gap {
		cut := pb.SignificanceGap(suite.Sums)
		fmt.Printf("Significance gap after the top %d parameters (paper: 10).\n", cut)
	}
	if *pov {
		out, err := report.DominanceTable(suite, 5)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if *csvRanks != "" {
		if err := writeCSV(*csvRanks, suite, experiment.WriteRanksCSV); err != nil {
			return err
		}
	}
	if *csvRaw != "" {
		if err := writeCSV(*csvRaw, suite, experiment.WriteResponsesCSV); err != nil {
			return err
		}
	}
	if *stability {
		rep, err := methodology.Jackknife(suite)
		if err != nil {
			return err
		}
		fmt.Println("Leave-one-benchmark-out stability (position envelope per factor):")
		for _, fs := range rep.ByFullPosition() {
			fmt.Printf("  %2d. %-35s positions %d..%d (spread %d)\n",
				fs.FullPosition, fs.Factor.Name, fs.MinPosition, fs.MaxPosition, fs.Spread)
		}
	}
	return nil
}

func selectWorkloads(list string) ([]workload.Workload, error) {
	if list == "" {
		return nil, nil // all
	}
	var ws []workload.Workload
	for _, name := range strings.Split(list, ",") {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// writeCSV writes one CSV view of the suite to a file.
func writeCSV(path string, suite *pb.Suite, fn func(w io.Writer, s *pb.Suite) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//pbcheck:ignore errdiscard error-path cleanup only; the success path checks the Close below
	defer f.Close()
	if err := fn(f, suite); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return f.Close()
}
