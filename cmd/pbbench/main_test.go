package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchOutput fabricates bench output with the given ns/op samples.
func benchOutput(samples ...string) string {
	var b strings.Builder
	b.WriteString("goos: linux\ngoarch: amd64\npkg: pbsim\n")
	for _, s := range samples {
		b.WriteString("BenchmarkSim \t 2\t " + s + " ns/op\n")
	}
	b.WriteString("PASS\n")
	return b.String()
}

// capture runs `pbbench run` on fabricated output and returns the
// trajectory path.
func capture(t *testing.T, rev string, samples ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_"+rev+".json")
	var out bytes.Buffer
	code, err := run([]string{"run", "-rev", rev, "-out", path},
		&out, strings.NewReader(benchOutput(samples...)))
	if err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), path) {
		t.Fatalf("run output %q does not name %s", out.String(), path)
	}
	return path
}

func TestRunDiffCheckPipeline(t *testing.T) {
	base := capture(t, "0", "100", "101", "99", "100", "102")
	same := capture(t, "same", "100", "102", "99", "101", "100")

	// Steady performance: diff and check both exit 0.
	for _, sub := range []string{"diff", "check"} {
		var out bytes.Buffer
		code, err := run([]string{sub, "-threshold", "10%", base, same}, &out, nil)
		if err != nil || code != 0 {
			t.Fatalf("%s steady: code %d, err %v\n%s", sub, code, err, out.String())
		}
		if !strings.Contains(out.String(), "| Sim |") {
			t.Errorf("%s output missing table:\n%s", sub, out.String())
		}
	}
}

func TestCheckFailsOnInjectedRegression(t *testing.T) {
	base := capture(t, "0", "100", "101", "99", "100", "102")
	slow := capture(t, "bad", "150", "151", "149", "150", "152")

	var out bytes.Buffer
	code, err := run([]string{"check", "-threshold", "10%", base, slow}, &out, nil)
	if code != 1 || err == nil {
		t.Fatalf("check vs injected +50%% regression: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("check table does not mark the regression:\n%s", out.String())
	}

	// diff reports the same table but never gates.
	out.Reset()
	code, err = run([]string{"diff", base, slow}, &out, nil)
	if err != nil || code != 0 {
		t.Fatalf("diff on regression: code %d, err %v", code, err)
	}
}

func TestCheckJSONOutput(t *testing.T) {
	base := capture(t, "0", "100", "101", "99", "100", "102")
	slow := capture(t, "bad", "150", "151", "149", "150", "152")
	var out bytes.Buffer
	code, _ := run([]string{"check", "-json", base, slow}, &out, nil)
	if code != 1 {
		t.Fatalf("check -json: code %d", code)
	}
	for _, want := range []string{`"regression": true`, `"OldRev": "0"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("JSON report missing %q:\n%s", want, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"explode"},
		{"run", "positional"},
		{"check", "only-one.json"},
		{"check", "-threshold", "ten", "a.json", "b.json"},
		{"diff", filepath.Join(t.TempDir(), "missing.json"), "also-missing.json"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if code, _ := run(args, &out, strings.NewReader("")); code != 2 {
			t.Errorf("run(%v) = code %d, want 2", args, code)
		}
	}
}

func TestRunDefaultsOutputToRevName(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	var out bytes.Buffer
	code, err := run([]string{"run", "-rev", "xyz"}, &out, strings.NewReader(benchOutput("10")))
	if err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v", code, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_xyz.json")); err != nil {
		t.Fatal(err)
	}
}
