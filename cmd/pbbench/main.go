// Command pbbench is the benchmark-trajectory pipeline: it turns
// `go test -bench` output into canonical BENCH_<rev>.json files and
// compares two of them with the repository's minimal-benchstat rules
// (median, order-statistic confidence interval, significance-gated
// threshold). It is what the Makefile bench targets and the CI bench
// job call, so a performance regression fails the build with the same
// mechanical rigor a correctness regression does.
//
// Usage:
//
//	go test -bench=. -count=5 . | pbbench run -rev ci -out BENCH_ci.json
//	pbbench diff  [-threshold 10%] [-json] OLD.json NEW.json
//	pbbench check [-threshold 10%] [-json] OLD.json NEW.json
//
// run parses benchmark output (stdin, or -input FILE) and writes the
// summarized trajectory. diff prints the comparison as a markdown
// table (or the full report with -json) and always exits 0. check is
// diff with teeth: it exits 1 when any metric regresses past the
// threshold.
//
// Exit codes: 0 success, 1 regression detected, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pbsim/internal/obs"
	"pbsim/internal/perfbench"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbbench: error: %v\n", err)
	}
	os.Exit(code)
}

// run dispatches the subcommand and returns the process exit code.
func run(args []string, stdout io.Writer, stdin io.Reader) (int, error) {
	if len(args) == 0 {
		return 2, fmt.Errorf("usage: pbbench run|diff|check [flags]; see go doc ./cmd/pbbench")
	}
	switch args[0] {
	case "run":
		return runCapture(args[1:], stdout, stdin)
	case "diff":
		return runCompare(args[1:], stdout, false)
	case "check":
		return runCompare(args[1:], stdout, true)
	default:
		return 2, fmt.Errorf("unknown subcommand %q (want run, diff, or check)", args[0])
	}
}

// runCapture implements `pbbench run`: bench output in, trajectory
// JSON out.
func runCapture(args []string, stdout io.Writer, stdin io.Reader) (int, error) {
	fs := flag.NewFlagSet("pbbench run", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		input = fs.String("input", "-", "benchmark output to parse (- for stdin)")
		rev   = fs.String("rev", "ci", "revision label stored in the trajectory")
		out   = fs.String("out", "", "output path (default BENCH_<rev>.json)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, nil // flag already printed its own usage message
	}
	if fs.NArg() != 0 {
		return 2, fmt.Errorf("run takes no positional arguments, got %v", fs.Args())
	}
	set, err := parseInput(*input, stdin)
	if err != nil {
		return 2, err
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *rev)
	}
	if err := writeTrajectory(path, perfbench.FromSet(set, *rev)); err != nil {
		return 2, err
	}
	fmt.Fprintf(stdout, "pbbench: wrote %s (%d metrics)\n", path, len(set.Order))
	return 0, nil
}

// runCompare implements diff (gate=false) and check (gate=true).
func runCompare(args []string, stdout io.Writer, gate bool) (int, error) {
	name := "pbbench diff"
	if gate {
		name = "pbbench check"
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		threshold = fs.String("threshold", "10%", "median delta beyond which a significant move regresses")
		jsonOut   = fs.Bool("json", false, "emit the full report as JSON instead of a table")
	)
	if err := fs.Parse(args); err != nil {
		return 2, nil // flag already printed its own usage message
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("%s needs exactly two trajectory files (old new), got %d args", name, fs.NArg())
	}
	thr, err := perfbench.ParseThreshold(*threshold)
	if err != nil {
		return 2, err
	}
	oldF, err := readTrajectory(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	newF, err := readTrajectory(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	report := perfbench.Diff(oldF, newF, thr)
	if *jsonOut {
		if err := perfbench.EncodeReport(stdout, report); err != nil {
			return 2, err
		}
	} else if err := perfbench.FormatTable(stdout, report); err != nil {
		return 2, err
	}
	if regs := report.Regressions(); gate && len(regs) > 0 {
		return 1, fmt.Errorf("%d metric(s) regressed beyond %s vs %s (first: %s %s %+.2f%%)",
			len(regs), *threshold, report.OldRev, regs[0].Benchmark, regs[0].Unit, regs[0].Pct)
	}
	return 0, nil
}

// parseInput reads benchmark output from a file or stdin.
func parseInput(path string, stdin io.Reader) (set *perfbench.Set, err error) {
	if path == "-" {
		return perfbench.ParseSet(stdin)
	}
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer obs.FoldClose(&err, in)
	return perfbench.ParseSet(in)
}

func readTrajectory(path string) (f *perfbench.File, err error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer obs.FoldClose(&err, in)
	return perfbench.Decode(in)
}

func writeTrajectory(path string, f *perfbench.File) (err error) {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, out)
	return perfbench.Encode(out, f)
}
