// Command pbassess runs the methodology-assessment shoot-out: it
// samples synthetic ground-truth response surfaces (internal/truth)
// whose important parameters are known by construction, screens each
// one with the paper's Plackett-Burman design, its foldover variant,
// a one-at-a-time sweep, and the full factorial, and reports how
// often each method recovered the truth — Spearman rank correlation,
// critical-set precision/recall with 95% confidence intervals, and
// simulation cost, per surface family (Table A).
//
// The whole campaign is a pure function of its flags: the same -seed
// produces a bit-identical report for any -workers value.
//
// Usage:
//
//	pbassess [-families main-effects,three-factor,...] [-n 200]
//	         [-k 9] [-critical 3] [-snr 10] [-seed 1] [-budget 0]
//	         [-workers 4] [-warn 0.8] [-json] [-json-out trust.json]
//	         [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
//
// Exit status is 0 even when cells are flagged: the warnings are the
// product, not a failure of the tool.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pbsim/internal/assess"
	"pbsim/internal/obs"
	"pbsim/internal/report"
	"pbsim/internal/truth"
)

func main() {
	os.Exit(obs.Exit(os.Stderr, "pbassess", run(os.Args[1:], os.Stdout, os.Stderr)))
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("pbassess", flag.ContinueOnError)
	fs.SetOutput(stderr)
	famList := fs.String("families", "", "comma-separated surface families (default: all of "+familyNames()+")")
	n := fs.Int("n", 200, "surfaces sampled per family")
	k := fs.Int("k", 9, "factors per surface (2..16)")
	critical := fs.Int("critical", 3, "truly-critical factors per surface")
	snr := fs.Float64("snr", 10, "signal-to-noise ratio of the surfaces (0 = noiseless)")
	seed := fs.Int64("seed", 1, "campaign seed; the report is a pure function of the flags")
	budget := fs.Int("budget", 0, "per-surface run budget; methods needing more are skipped (0 = unlimited)")
	workers := fs.Int("workers", 0, "surfaces assessed in parallel (default GOMAXPROCS); does not change the report")
	warn := fs.Float64("warn", assess.DefaultWarnThreshold, "trust (mean recall) below this flags the family/method cell")
	jsonStdout := fs.Bool("json", false, "write the JSON report to stdout instead of the text tables")
	jsonOut := fs.String("json-out", "", "also write the JSON report to this file")
	obsFlags := obs.RegisterCLIFlags(fs, "pbassess")
	if err := fs.Parse(args); err != nil {
		return obs.Usagef("%v", err)
	}
	if fs.NArg() > 0 {
		return obs.Usagef("unexpected arguments: %v", fs.Args())
	}
	families, err := parseFamilies(*famList)
	if err != nil {
		return obs.Usagef("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obsFlags.Start(stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	rep, err := assess.Run(ctx, assess.Config{
		Families:      families,
		Surfaces:      *n,
		Factors:       *k,
		Critical:      *critical,
		SNR:           *snr,
		Seed:          *seed,
		Budget:        *budget,
		Workers:       *workers,
		WarnThreshold: *warn,
		Recorder:      sess.Recorder(),
	})
	if err != nil {
		return err
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, rep); err != nil {
			return err
		}
		fmt.Fprintln(stderr, "pbassess: wrote", *jsonOut)
	}
	if *jsonStdout {
		return encodeJSON(stdout, rep)
	}
	fmt.Fprintln(stdout, report.TrustTable(rep))
	if warns := rep.Warnings(); len(warns) > 0 {
		fmt.Fprintf(stdout, "Do not trust (recall below %.2f):\n", rep.WarnThreshold)
		for _, w := range warns {
			fmt.Fprintln(stdout, "  -", w)
		}
	} else {
		fmt.Fprintln(stdout, "Every method cleared the trust threshold on every family.")
	}
	return nil
}

// parseFamilies resolves a comma-separated list against the known
// surface families; empty selects all of them.
func parseFamilies(list string) ([]truth.Family, error) {
	if list == "" {
		return nil, nil
	}
	known := map[truth.Family]bool{}
	for _, f := range truth.Families() {
		known[f] = true
	}
	var out []truth.Family
	for _, name := range strings.Split(list, ",") {
		f := truth.Family(strings.TrimSpace(name))
		if !known[f] {
			return nil, fmt.Errorf("unknown family %q (have %s)", name, familyNames())
		}
		out = append(out, f)
	}
	return out, nil
}

func familyNames() string {
	var names []string
	for _, f := range truth.Families() {
		names = append(names, string(f))
	}
	return strings.Join(names, ",")
}

func writeJSON(path string, rep *assess.Report) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, f)
	return encodeJSON(f, rep)
}

func encodeJSON(w io.Writer, rep *assess.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
