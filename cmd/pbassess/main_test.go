package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pbsim/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// goldenArgs is the pinned small campaign: every flag fixed, one
// worker, so the output is a pure function of the code.
func goldenArgs(extra ...string) []string {
	return append([]string{"-n", "5", "-k", "8", "-critical", "3", "-snr", "10", "-seed", "1", "-workers", "1"}, extra...)
}

func runTool(t *testing.T, args []string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s (rerun with -update if intended):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// The exact text trust report for the pinned seed is frozen: any
// change to the generator, the designs, the scoring, or the table
// renderer must be an intentional, reviewed diff of this file.
func TestGoldenTextReport(t *testing.T) {
	checkGolden(t, "trust_small.golden", runTool(t, goldenArgs()))
}

func TestGoldenJSONReport(t *testing.T) {
	checkGolden(t, "trust_small_json.golden", runTool(t, goldenArgs("-json")))
}

// The acceptance criterion at the CLI level: the JSON report is
// bit-identical across worker counts and repeated invocations.
func TestJSONBitIdenticalAcrossWorkers(t *testing.T) {
	one := runTool(t, goldenArgs("-json"))
	eight := runTool(t, []string{"-n", "5", "-k", "8", "-critical", "3", "-snr", "10", "-seed", "1", "-workers", "8", "-json"})
	if one != eight {
		t.Error("JSON report differs between -workers 1 and -workers 8")
	}
	if again := runTool(t, goldenArgs("-json")); one != again {
		t.Error("JSON report differs across repeated invocations")
	}
}

// -json-out writes the same bytes to the file as -json writes to
// stdout, alongside the text report.
func TestJSONOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trust.json")
	text := runTool(t, goldenArgs("-json-out", path))
	if !strings.Contains(text, "Table A") {
		t.Errorf("-json-out suppressed the text report:\n%s", text)
	}
	fromFile, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(fromFile) != runTool(t, goldenArgs("-json")) {
		t.Error("-json-out file differs from -json stdout")
	}
}

// -families restricts the campaign.
func TestFamilySubset(t *testing.T) {
	out := runTool(t, goldenArgs("-families", "three-factor"))
	if !strings.Contains(out, "three-factor") {
		t.Errorf("selected family missing:\n%s", out)
	}
	for _, absent := range []string{"main-effects", "cliff", "saturating"} {
		if strings.Contains(out, absent) {
			t.Errorf("unselected family %q present:\n%s", absent, out)
		}
	}
	if !strings.Contains(out, "Do not trust") {
		t.Errorf("three-factor campaign raised no warnings:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-families", "no-such-family"},
		{"-no-such-flag"},
		{"positional"},
	}
	for _, args := range cases {
		err := run(args, io.Discard, io.Discard)
		if err == nil {
			t.Errorf("run(%v) accepted", args)
			continue
		}
		if code := obs.Exit(io.Discard, "pbassess", err); code != 2 {
			t.Errorf("run(%v) exits %d, want 2", args, code)
		}
	}
	// A generator-level error is a runtime failure (exit 1), not usage.
	err := run([]string{"-k", "40"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("k=40 accepted")
	}
	if code := obs.Exit(io.Discard, "pbassess", err); code != 1 {
		t.Errorf("k=40 exits %d, want 1", code)
	}
}
