// Command tablegen regenerates every table of the paper into an
// output directory: the static tables (1-8) directly and the
// experimental tables (9-12) by running the full Plackett-Burman
// experiments on the simulator. The experimental runs are fault
// tolerant: -timeout, -retries, and -checkpoint behave as in pbrank,
// and Ctrl-C leaves a resumable checkpoint instead of lost work.
//
// Observability: -metrics journals every experimental suite's events
// to one JSONL file, -progress prints live progress and a combined
// end-of-run summary, -debug-addr serves expvar and pprof.
//
// Usage:
//
//	tablegen [-out out] [-table 0] [-n 100000] [-warmup 30000]
//	         [-timeout 0] [-retries 0] [-checkpoint tables.jsonl]
//	         [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
//
// With -table 0 (the default) all tables are generated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"pbsim/internal/cluster"
	"pbsim/internal/enhance"
	"pbsim/internal/experiment"
	"pbsim/internal/methodology"
	"pbsim/internal/obs"
	"pbsim/internal/paperdata"
	"pbsim/internal/pb"
	"pbsim/internal/report"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func main() {
	os.Exit(obs.Exit(os.Stderr, "tablegen", run()))
}

func run() (err error) {
	out := flag.String("out", "out", "output directory")
	table := flag.Int("table", 0, "table to generate (1..12, 0 = all)")
	n := flag.Int64("n", experiment.DefaultInstructions, "instructions per configuration for tables 9-12")
	warmup := flag.Int64("warmup", experiment.DefaultWarmup, "warmup instructions per configuration")
	par := flag.Int("par", 0, "parallel simulations")
	timeout := flag.Duration("timeout", 0, "per-configuration timeout (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed configuration")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file shared by all experimental tables")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine, "tablegen")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	g := &generator{
		ctx: ctx, out: *out, n: *n, warmup: *warmup, par: *par,
		timeout: *timeout, retries: *retries, checkpoint: *checkpoint,
		recorder: sess.Recorder(),
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	steps := map[int]func() error{
		1: g.table1, 2: g.table2, 3: g.table3, 4: g.table4,
		5: g.table5, 6: g.tables678, 7: g.tables678, 8: g.tables678,
		9: g.table9, 10: g.tables1011, 11: g.tables1011, 12: g.table12,
	}
	if *table != 0 {
		step, ok := steps[*table]
		if !ok {
			return obs.Usagef("unknown table %d", *table)
		}
		return step()
	}
	for _, i := range []int{1, 2, 3, 4, 5, 6, 9, 10, 12} {
		if err := steps[i](); err != nil {
			return err
		}
	}
	return nil
}

type generator struct {
	ctx        context.Context
	out        string
	n          int64
	warmup     int64
	par        int
	timeout    time.Duration
	retries    int
	checkpoint string
	recorder   obs.Recorder
	// cached experiment results shared between tables
	base *pb.Suite
}

func (g *generator) write(name, content string) error {
	path := filepath.Join(g.out, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func (g *generator) table1() error {
	return g.write("table01_design_cost.txt", report.DesignCost(43))
}

func (g *generator) table2() error {
	d, err := pb.NewWithSize(8, false)
	if err != nil {
		return err
	}
	return g.write("table02_design_x8.txt", report.DesignMatrix(d))
}

func (g *generator) table3() error {
	d, err := pb.NewWithSize(8, true)
	if err != nil {
		return err
	}
	return g.write("table03_design_x8_foldover.txt", report.DesignMatrix(d))
}

func (g *generator) table4() error {
	out, err := report.WorkedExample()
	if err != nil {
		return err
	}
	return g.write("table04_worked_example.txt", out)
}

func (g *generator) table5() error {
	return g.write("table05_benchmarks.txt", report.WorkloadRoster())
}

func (g *generator) tables678() error {
	return g.write("table06_07_08_parameters.txt", report.ParameterValues())
}

func (g *generator) options(label string) experiment.Options {
	return experiment.Options{
		Instructions: g.n,
		Warmup:       g.warmup,
		Foldover:     true,
		Parallelism:  g.par,
		Timeout:      g.timeout,
		Retries:      g.retries,
		Checkpoint:   g.checkpoint,
		Label:        label,
		Recorder:     g.recorder,
	}
}

func (g *generator) baseSuite() (*pb.Suite, error) {
	if g.base != nil {
		return g.base, nil
	}
	suite, err := experiment.RunSuiteCtx(g.ctx, g.options("base"))
	if err != nil {
		return nil, err
	}
	g.base = suite
	return suite, nil
}

func (g *generator) table9() error {
	suite, err := g.baseSuite()
	if err != nil {
		return err
	}
	body := report.RankTable(suite, "Table 9: Plackett and Burman Design Results for All Processor Parameters") +
		"\n" + report.RankTableWithPaper(suite, paperdata.Table9, "Measured ordering vs the paper's Table 9")
	return g.write("table09_pb_ranks.txt", body)
}

func (g *generator) tables1011() error {
	suite, err := g.baseSuite()
	if err != nil {
		return err
	}
	m, err := cluster.DistanceMatrix(suite.Benchmarks, suite.RankRows)
	if err != nil {
		return err
	}
	if err := g.write("table10_distances.txt",
		report.DistanceTable(m, "Table 10: Distance Between Benchmark Vectors, Based on Parameter Ranks")); err != nil {
		return err
	}
	// The paper hand-picks sqrt(4000) for its own rank scale; for the
	// measured ranks the equivalent data-driven choice is the same
	// percentile of pairwise distances the paper's threshold selects
	// on its data (~15%).
	threshold := cluster.PercentileThreshold(m, 0.15)
	groups := cluster.GroupNames(m, cluster.ThresholdGroups(m, threshold))
	return g.write("table11_groups.txt", report.GroupTable(groups, threshold))
}

func (g *generator) table12() error {
	before, err := g.baseSuite()
	if err != nil {
		return err
	}
	profiles := make(map[string]map[uint32]uint64, 13)
	for _, w := range workload.All() {
		freq, err := enhance.Profile(w.Params, g.warmup+g.n)
		if err != nil {
			return err
		}
		profiles[w.Name] = freq
	}
	opts := g.options("precompute-128")
	opts.Shortcut = func(w workload.Workload) (sim.ComputeShortcut, error) {
		return enhance.NewPrecomputation(profiles[w.Name], 128)
	}
	after, err := experiment.RunSuiteCtx(g.ctx, opts)
	if err != nil {
		return err
	}
	shifts, err := methodology.CompareEnhancement(before, after)
	if err != nil {
		return err
	}
	body := report.RankTable(after, "Table 12: PB Design Results With Instruction Precomputation (128-entry table)") +
		"\n" + report.ShiftTable(shifts, "Parameter significance before vs after instruction precomputation") +
		"\n" + report.RankTableWithPaper(after, paperdata.Table12, "Enhanced ordering vs the paper's Table 12")
	return g.write("table12_enhanced_ranks.txt", body)
}
