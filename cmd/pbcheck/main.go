// Command pbcheck runs the project's static-analysis suite: thirteen
// analyzers enforcing the reproducibility invariants the PB
// methodology depends on (determinism, nopanic, floateq, errdiscard,
// ctxflow, hotalloc, locksafe, leakygo, purity, lockflow, errflow,
// racecheck, chansafe), built purely on the standard library's
// go/parser + go/types. Analysis is interprocedural: a module-wide
// call graph propagates nondeterminism/panic/allocation/write-effect
// facts to fixpoint before any rule runs, so a sink laundered through
// helper calls and package boundaries is still found, and a
// module-wide Andersen points-to/escape solve feeds alias-aware
// ownership and goroutine-sharing queries. The purity rule
// additionally consumes //pbcheck:pure markers, and
// lockflow/errflow/racecheck/chansafe are flow-sensitive: they solve
// dataflow problems over a per-function CFG instead of
// pattern-matching statements. Rule execution fans packages out over
// a bounded worker pool (-workers) with byte-identical output at any
// parallelism.
//
// Usage:
//
//	pbcheck [flags] [packages]
//
// Packages use go-tool patterns (./..., ./internal/stats, import
// paths); the default is ./... from the enclosing module root.
//
// Exit codes: 0 clean, 1 findings, 2 load/usage error — suitable for
// CI gates. Findings are waived per line with
// //pbcheck:ignore <rule> <reason>; the reason is mandatory. With
// -baseline, findings whose position-independent fingerprint appears
// in the baseline file are reported but do not affect the exit code:
// the ratchet fails only on NEW findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"pbsim/internal/analysis"
	"pbsim/internal/analysis/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pbcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut    = fs.Bool("json", false, "emit the full diagnostic report (suppressed findings included) as JSON")
		mdOut      = fs.Bool("md", false, "emit a markdown findings/waiver summary (for CI step summaries)")
		list       = fs.Bool("list", false, "list the analyzers and the invariant each enforces, then exit")
		ruleList   = fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
		tests      = fs.Bool("tests", false, "also analyze _test.go files of each package")
		suppressed = fs.Bool("suppressed", false, "show suppressed findings (with their reasons) in plain output")
		dir        = fs.String("C", ".", "directory whose enclosing module to analyze")
		baseline   = fs.String("baseline", "", "baseline file: findings fingerprinted there are reported but do not fail the run")
		writeBase  = fs.String("write-baseline", "", "write the current unsuppressed findings to this baseline file and exit 0")
		statsOut   = fs.Bool("stats", false, "append per-rule wall time and finding counts to the report (all output modes)")
		workers    = fs.Int("workers", analysis.DefaultWorkers(), "packages analyzed concurrently in the rule phase (1 = sequential; output is identical at any value)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	selected, unknown := rules.Select(*ruleList)
	if len(unknown) > 0 {
		fmt.Fprintf(stderr, "pbcheck: unknown rule(s) %v; run pbcheck -list\n", unknown)
		return 2
	}
	if *list {
		for _, a := range rules.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "pbcheck: %v\n", err)
		return 2
	}
	loader.IncludeTests = *tests
	dirs, err := analysis.ExpandPatterns(loader.Root, loader.Module, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "pbcheck: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		fmt.Fprintf(stderr, "pbcheck: %v\n", err)
		return 2
	}
	// The loader's universe includes every module dependency pulled in
	// while type-checking the selected packages; the fact engine needs
	// those bodies even though they are not analyzed for reporting.
	diags, stats, err := analysis.RunUniverseTimedWorkers(pkgs, loader.Universe(), selected, *workers)
	if err != nil {
		fmt.Fprintf(stderr, "pbcheck: %v\n", err)
		return 2
	}
	if !*statsOut {
		stats = nil
	}

	if *writeBase != "" {
		if err := analysis.WriteBaseline(*writeBase, diags); err != nil {
			fmt.Fprintf(stderr, "pbcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "pbcheck: wrote baseline %s\n", *writeBase)
		return 0
	}
	if *baseline != "" {
		set, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "pbcheck: %v\n", err)
			return 2
		}
		analysis.ApplyBaseline(diags, set)
	}

	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(stdout, loader.Root, diags, stats); err != nil {
			fmt.Fprintf(stderr, "pbcheck: %v\n", err)
			return 2
		}
	case *mdOut:
		analysis.WriteMarkdown(stdout, loader.Root, diags)
		analysis.WriteStatsMarkdown(stdout, stats)
	default:
		analysis.WritePlain(stdout, loader.Root, diags, *suppressed)
		analysis.WriteStats(stdout, stats)
	}
	if analysis.Active(diags) > 0 {
		return 1
	}
	return 0
}
