// Command pbfrontier measures the accuracy-vs-speed frontier of
// sampled simulation: it runs the full Plackett-Burman suite once as
// ground truth, reruns it under each sampling estimator, and reports
// where every estimator lands on the two axes that matter — the
// detailed-instruction speedup, and the Spearman rank correlation of
// the sampled Table 9 ordering against the full one.
//
// The frontier is a gate, not just a report: any estimator whose
// Spearman falls below -min-spearman fails the run (exit 1), which is
// how CI refuses a sampling configuration that would change the
// paper's conclusions.
//
// Usage:
//
//	pbfrontier [-n 100000] [-warmup 30000] [-foldover]
//	           [-benchmarks gzip,mcf,...] [-estimators uniform,...]
//	           [-region 2000] [-frac 0.08] [-region-warmup -1]
//	           [-func-warmup 24000] [-seed 1] [-strata 4] [-set 3]
//	           [-min-spearman 0.95] [-par 0]
//	           [-json-out frontier.json] [-md-out frontier.md]
//	           [-bench-out BENCH_ci.json] [-rev ci]
//
// Every gated number (speedups, errors, correlations) is a
// deterministic function of the flags; only the wall-clock columns
// vary between machines.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pbsim/internal/experiment"
	"pbsim/internal/obs"
	"pbsim/internal/perfbench"
	"pbsim/internal/sampling"
	"pbsim/internal/workload"
)

func main() {
	os.Exit(obs.Exit(os.Stderr, "pbfrontier", run(os.Args[1:], os.Stdout, os.Stderr)))
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pbfrontier", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int64("n", experiment.DefaultInstructions, "instructions measured per configuration")
	warmup := fs.Int64("warmup", experiment.DefaultWarmup, "warmup instructions per configuration")
	foldover := fs.Bool("foldover", true, "run the 2X-configuration foldover design")
	benchList := fs.String("benchmarks", "", "comma-separated subset of benchmarks (default: all 13)")
	estList := fs.String("estimators", "", "comma-separated estimators to sweep (default: "+strings.Join(sampling.Names(), ",")+")")
	region := fs.Int64("region", sampling.DefaultRegionSize, "instructions per sampling region")
	frac := fs.Float64("frac", sampling.DefaultFraction, "fraction of regions to detail-simulate, in (0, 1]")
	regionWarm := fs.Int64("region-warmup", -1, "detailed warmup instructions before each sampled region (-1 = region/4, 0 disables)")
	funcWarm := fs.Int64("func-warmup", -1, "functionally warmed instructions before each region's detailed warmup (-1 = 8*region, 0 disables)")
	seed := fs.Uint64("seed", 1, "region-selection seed")
	strata := fs.Int("strata", sampling.DefaultStrata, "proxy-quantile strata (stratified estimator)")
	set := fs.Int("set", sampling.DefaultSetSize, "judgment-ranking set size (rankedset estimator)")
	minSpearman := fs.Float64("min-spearman", experiment.DefaultMinSpearman, "rank-correlation gate; any estimator below it fails the run")
	par := fs.Int("par", 0, "parallel simulations (default GOMAXPROCS)")
	jsonOut := fs.String("json-out", "", "write the JSON report to this file")
	mdOut := fs.String("md-out", "", "write the markdown report (CI step summary) to this file")
	benchOut := fs.String("bench-out", "", "write the frontier as a perfbench trajectory file (BENCH_<rev>.json)")
	rev := fs.String("rev", "ci", "revision label recorded in -bench-out")
	if err := fs.Parse(args); err != nil {
		return obs.Usagef("%v", err)
	}
	if fs.NArg() > 0 {
		return obs.Usagef("unexpected arguments: %v", fs.Args())
	}
	ws, err := selectWorkloads(*benchList)
	if err != nil {
		return obs.Usagef("%v", err)
	}
	var ests []string
	if *estList != "" {
		for _, e := range strings.Split(*estList, ",") {
			ests = append(ests, strings.TrimSpace(e))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := experiment.RunFrontier(ctx, experiment.FrontierOptions{
		Instructions: *n,
		Warmup:       *warmup,
		Foldover:     *foldover,
		Parallelism:  *par,
		Workloads:    ws,
		Estimators:   ests,
		MinSpearman:  *minSpearman,
		Spec: sampling.Spec{
			RegionSize:   *region,
			Fraction:     *frac,
			RegionWarmup: *regionWarm,
			FuncWarmup:   *funcWarm,
			Seed:         *seed,
			Strata:       *strata,
			SetSize:      *set,
		},
	})
	if err != nil {
		return err
	}

	if err := rep.WriteText(stdout); err != nil {
		return err
	}
	if *jsonOut != "" {
		if err := writeFile(*jsonOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}); err != nil {
			return err
		}
		fmt.Fprintln(stderr, "pbfrontier: wrote", *jsonOut)
	}
	if *mdOut != "" {
		if err := writeFile(*mdOut, rep.WriteMarkdown); err != nil {
			return err
		}
		fmt.Fprintln(stderr, "pbfrontier: wrote", *mdOut)
	}
	if *benchOut != "" {
		if err := writeFile(*benchOut, func(w io.Writer) error {
			return perfbench.Encode(w, benchFile(rep, *rev))
		}); err != nil {
			return err
		}
		fmt.Fprintln(stderr, "pbfrontier: wrote", *benchOut)
	}
	if !rep.Pass {
		return fmt.Errorf("frontier gate failed: an estimator's Spearman fell below %.2f", rep.MinSpearman)
	}
	return nil
}

// benchFile converts the frontier report into a perfbench trajectory
// point, so BENCH_<rev>.json carries both axes (speedup factor and CPI
// relative error) per estimator alongside the timing benchmarks.
func benchFile(rep *experiment.FrontierReport, rev string) *perfbench.File {
	f := &perfbench.File{
		Schema: perfbench.Schema,
		Rev:    rev,
		Config: map[string]string{
			"n":          fmt.Sprint(rep.Instructions),
			"warmup":     fmt.Sprint(rep.Warmup),
			"foldover":   fmt.Sprint(rep.Foldover),
			"benchmarks": strings.Join(rep.Benchmarks, ","),
			"sample":     rep.SampleSpec,
		},
	}
	for _, p := range rep.Points {
		f.Frontier = append(f.Frontier, perfbench.FrontierPoint{
			Estimator:     p.Estimator,
			InstrSpeedup:  p.InstrSpeedup,
			WallSpeedup:   p.WallSpeedup,
			MeanCPIRelErr: p.MeanCPIRelErr,
			MaxCPIRelErr:  p.MaxCPIRelErr,
			Spearman:      p.Spearman,
			Pass:          p.Pass,
		})
	}
	return f
}

func selectWorkloads(list string) ([]workload.Workload, error) {
	if list == "" {
		return nil, nil // all
	}
	var ws []workload.Workload
	for _, name := range strings.Split(list, ",") {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

func writeFile(path string, fn func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, f)
	return fn(f)
}
