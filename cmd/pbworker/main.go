// Command pbworker joins a distributed Plackett-Burman campaign: it
// opens a shared campaign directory created by pbrank -shard-dir,
// reconstructs the experiment task from the campaign manifest, and
// claims, executes, and commits work units (design row × benchmark)
// until the campaign is complete. Any number of pbworker processes —
// across machines, if the directory is on a shared filesystem — can
// work one campaign concurrently; crashed or stalled workers lose
// their leases after -ttl and their units are stolen by the rest.
// Results land in per-worker append-only shard ledgers that
// pbrank -shard-dir (or any later pbrank with the same flags) merges
// into the exact Table 9 a sequential run prints.
//
// The worker validates its reconstruction: the fingerprint recomputed
// from the manifest's spec must match the manifest's, so a version-
// or flag-skewed worker refuses to join rather than committing rows
// computed under different budgets.
//
// Sampled campaigns need no extra flags here: when pbrank created the
// campaign with -sample, the manifest's spec carries the canonical
// sampling parameters, the worker rebuilds the identical deterministic
// region schedule from them, and the fingerprint check refuses any
// worker whose reconstruction would not be bit-identical.
//
// Usage:
//
//	pbworker -dir campaign/ [-id worker-name] [-ttl 10s] [-poll 0]
//	         [-sync] [-timeout 0] [-retries 0]
//	         [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
//
// Exit codes: 0 campaign complete (or completed by others), 1 work
// failure, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pbsim/internal/experiment"
	"pbsim/internal/obs"
	"pbsim/internal/runner"
	"pbsim/internal/runner/dist"
)

func main() {
	os.Exit(obs.Exit(os.Stderr, "pbworker", run()))
}

func run() (err error) {
	dir := flag.String("dir", "", "campaign directory (required; created by pbrank -shard-dir)")
	id := flag.String("id", "", "worker name; must be unique among live workers (default host-pid)")
	ttl := flag.Duration("ttl", 10*time.Second, "lease time-to-live; a worker silent this long loses its units")
	poll := flag.Duration("poll", 0, "wait between passes when all remaining units are leased elsewhere (default ttl/4)")
	sync := flag.Bool("sync", false, "fsync the shard ledger after every commit (survives machine death, not just process death)")
	timeout := flag.Duration("timeout", 0, "per-unit simulation timeout (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed unit")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine, "pbworker")
	flag.Parse()

	if *dir == "" {
		return obs.Usagef("-dir is required (a campaign directory created by pbrank -shard-dir)")
	}
	if *id == "" {
		host, herr := os.Hostname()
		if herr != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	c, err := dist.Open(*dir)
	if err != nil {
		return err
	}
	man := c.Manifest()
	opts, err := experiment.OptionsFromSpec(man.Spec)
	if err != nil {
		return err
	}
	task, err := experiment.CampaignTask(opts, man)
	if err != nil {
		return err
	}
	if rec := sess.Recorder(); rec != nil {
		rec.SuiteStarted(man.Fingerprint, len(man.Scopes), man.TotalRows())
	}
	stats, err := dist.RunWorker(ctx, *dir, task, dist.Config{
		ID:       *id,
		LeaseTTL: *ttl,
		Poll:     *poll,
		Sync:     *sync,
		Runner: runner.Config{
			Timeout: *timeout,
			Retries: *retries,
		},
		Recorder: sess.Recorder(),
	})
	if err != nil {
		if runner.Cancelled(err) {
			return fmt.Errorf("%w (committed units are durable; rerun pbworker -dir %s to resume)", err, *dir)
		}
		return err
	}
	fmt.Printf("pbworker %s: campaign complete — committed %d of %d units (%d leases claimed, %d stolen) over %d passes\n",
		*id, stats.Committed, man.TotalRows(), stats.Claimed, stats.Stolen, stats.Passes)
	return nil
}
