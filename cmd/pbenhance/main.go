// Command pbenhance reproduces Table 12 and the Section 4.3 analysis:
// it runs the X=44 foldover Plackett-Burman design once on the base
// processor and once with an enhancement (instruction precomputation
// by default, or dynamic value reuse), then compares the sum-of-ranks
// of every parameter before and after.
//
// Both suites are fault tolerant (-timeout, -retries) and share one
// -checkpoint file: the base and enhanced runs are journaled under
// distinct labels, so an interrupted comparison resumes without
// repeating either phase's completed configurations.
//
// Observability: -metrics journals both phases' events to one JSONL
// file (each phase keyed by its own fingerprint), -progress prints
// live progress and a combined end-of-run summary, and -debug-addr
// serves expvar and pprof.
//
// Usage:
//
//	pbenhance [-mechanism precompute|valuereuse] [-table 128] [-n 100000]
//	          [-timeout 0] [-retries 0] [-checkpoint enhance.jsonl]
//	          [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pbsim/internal/enhance"
	"pbsim/internal/experiment"
	"pbsim/internal/methodology"
	"pbsim/internal/obs"
	"pbsim/internal/paperdata"
	"pbsim/internal/report"
	"pbsim/internal/runner"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func main() {
	os.Exit(obs.Exit(os.Stderr, "pbenhance", run()))
}

func run() (err error) {
	mechanism := flag.String("mechanism", "precompute", "enhancement: 'precompute' (static table) or 'valuereuse' (dynamic)")
	tableSize := flag.Int("table", 128, "enhancement table entries (paper uses 128)")
	n := flag.Int64("n", experiment.DefaultInstructions, "instructions measured per configuration")
	warmup := flag.Int64("warmup", experiment.DefaultWarmup, "warmup instructions per configuration")
	par := flag.Int("par", 0, "parallel simulations (default GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-configuration timeout (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed configuration")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file shared by the base and enhanced suites")
	compare := flag.Bool("compare", false, "print the enhanced ordering next to the paper's Table 12 sums")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine, "pbenhance")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	factory, err := shortcutFactory(*mechanism, *tableSize, *warmup+*n)
	if err != nil {
		return err
	}
	opts := experiment.Options{
		Instructions: *n,
		Warmup:       *warmup,
		Foldover:     true,
		Parallelism:  *par,
		Timeout:      *timeout,
		Retries:      *retries,
		Checkpoint:   *checkpoint,
		Label:        "base",
		Recorder:     sess.Recorder(),
	}
	before, err := experiment.RunSuiteCtx(ctx, opts)
	if err != nil {
		return phaseErr("base experiment", err, *checkpoint)
	}
	opts.Shortcut = factory
	opts.Label = fmt.Sprintf("%s-%d", *mechanism, *tableSize)
	after, err := experiment.RunSuiteCtx(ctx, opts)
	if err != nil {
		return phaseErr("enhanced experiment", err, *checkpoint)
	}
	fmt.Println(report.RankTable(after,
		fmt.Sprintf("Table 12: Plackett and Burman Design Results With %s (%d-entry table)", *mechanism, *tableSize)))
	shifts, err := methodology.CompareEnhancement(before, after)
	if err != nil {
		return err
	}
	fmt.Println(report.ShiftTable(shifts, "Section 4.3: parameter significance before vs after the enhancement"))
	cut := 10
	big, err := methodology.BiggestShift(shifts, cut)
	if err == nil {
		fmt.Printf("Largest sum-of-ranks change among the top %d parameters: %s (%+d).\n",
			cut, big.Factor.Name, big.Shift)
		fmt.Println("(The paper finds the number of integer ALUs moves most under instruction precomputation.)")
	}
	if *compare {
		fmt.Println(report.RankTableWithPaper(after, paperdata.Table12,
			"Enhanced ordering vs the paper's published Table 12"))
	}
	return nil
}

// phaseErr annotates a suite failure with its phase and, for an
// interrupted checkpointed run, the resume hint.
func phaseErr(phase string, err error, checkpoint string) error {
	if runner.Cancelled(err) && checkpoint != "" {
		return fmt.Errorf("%s: %w (rerun with -checkpoint %s to resume)", phase, err, checkpoint)
	}
	return fmt.Errorf("%s: %w", phase, err)
}

func shortcutFactory(mechanism string, tableSize int, profileLen int64) (experiment.ShortcutFactory, error) {
	switch mechanism {
	case "precompute":
		// The compiler's profiling pass runs once per benchmark; every
		// simulated configuration then loads its own copy of the
		// resulting table (table state is per-run).
		profiles := make(map[string]map[uint32]uint64, 13)
		for _, w := range workload.All() {
			freq, err := enhance.Profile(w.Params, profileLen)
			if err != nil {
				return nil, err
			}
			profiles[w.Name] = freq
		}
		return func(w workload.Workload) (sim.ComputeShortcut, error) {
			freq, ok := profiles[w.Name]
			if !ok {
				var err error
				if freq, err = enhance.Profile(w.Params, profileLen); err != nil {
					return nil, err
				}
			}
			return enhance.NewPrecomputation(freq, tableSize)
		}, nil
	case "valuereuse":
		return func(workload.Workload) (sim.ComputeShortcut, error) {
			return enhance.NewValueReuse(tableSize)
		}, nil
	default:
		return nil, obs.Usagef("unknown mechanism %q", mechanism)
	}
}
