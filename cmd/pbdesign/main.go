// Command pbdesign prints Plackett-Burman design matrices and the
// paper's worked effects example (Tables 1-4).
//
// Observability: pbdesign runs no simulations, but it carries the
// repository-wide -metrics/-progress/-debug-addr flags so every tool
// shares one interface; its summary reports wall time only.
//
// Usage:
//
//	pbdesign [-x 8] [-foldover] [-example] [-cost N]
//	         [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
package main

import (
	"flag"
	"fmt"
	"os"

	"pbsim/internal/obs"
	"pbsim/internal/pb"
	"pbsim/internal/report"
)

func main() {
	os.Exit(obs.Exit(os.Stderr, "pbdesign", run()))
}

func run() (err error) {
	x := flag.Int("x", 8, "base design size (a supported multiple of four)")
	foldover := flag.Bool("foldover", false, "append the foldover rows (Table 3)")
	example := flag.Bool("example", false, "print the paper's worked effects example (Table 4)")
	cost := flag.Int("cost", 0, "also print the Table 1 design-cost comparison for N parameters")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine, "pbdesign")
	flag.Parse()

	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	if *cost > 0 {
		fmt.Println(report.DesignCost(*cost))
	}
	d, err := pb.NewWithSize(*x, *foldover)
	if err != nil {
		return obs.Usagef("%v (supported sizes: %v)", err, pb.SupportedSizes())
	}
	if err := pb.Verify(d); err != nil {
		return fmt.Errorf("internal design verification failed: %w", err)
	}
	fmt.Println(report.DesignMatrix(d))
	if *example {
		out, err := report.WorkedExample()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	return nil
}
