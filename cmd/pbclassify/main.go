// Command pbclassify reproduces Tables 10 and 11 of the paper:
// benchmark classification by the Euclidean distance between
// parameter-rank vectors. It can classify either the paper's published
// Table 9 ranks (the default, exactly reproducing the published
// Tables 10-11) or freshly measured ranks from the simulator.
//
// Observability (meaningful with -source sim, which runs the full
// suite): -metrics journals run events to JSONL, -progress prints
// live progress and an end-of-run summary, -debug-addr serves expvar
// and pprof.
//
// Usage:
//
//	pbclassify [-source paper|sim] [-threshold 63.25] [-dendrogram] [-n 100000]
//	           [-timeout 0] [-retries 0] [-checkpoint classify.jsonl]
//	           [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pbsim/internal/cluster"
	"pbsim/internal/experiment"
	"pbsim/internal/obs"
	"pbsim/internal/paperdata"
	"pbsim/internal/report"
)

func main() {
	os.Exit(obs.Exit(os.Stderr, "pbclassify", run()))
}

func run() (err error) {
	source := flag.String("source", "paper", "rank source: 'paper' (published Table 9) or 'sim' (fresh measurement)")
	threshold := flag.Float64("threshold", paperdata.Threshold, "similarity threshold (paper uses sqrt(4000) ~ 63.2); 0 selects the 15th percentile of measured distances")
	dendro := flag.Bool("dendrogram", false, "also print a single-linkage clustering dendrogram")
	n := flag.Int64("n", experiment.DefaultInstructions, "instructions per configuration when -source sim")
	warmup := flag.Int64("warmup", experiment.DefaultWarmup, "warmup instructions when -source sim")
	timeout := flag.Duration("timeout", 0, "per-configuration timeout when -source sim (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed configuration when -source sim")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file when -source sim")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine, "pbclassify")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	m, err := buildMatrix(ctx, *source, *n, *warmup, *timeout, *retries, *checkpoint, sess.Recorder())
	if err != nil {
		return err
	}
	fmt.Println(report.DistanceTable(m, "Table 10: Distance Between Benchmark Vectors, Based on Parameter Ranks"))
	cut := *threshold
	if cut <= 0 {
		cut = cluster.PercentileThreshold(m, 0.15)
	}
	groups := cluster.GroupNames(m, cluster.ThresholdGroups(m, cut))
	fmt.Println(report.GroupTable(groups, cut))
	if *dendro {
		fmt.Println(cluster.Agglomerate(m, cluster.SingleLinkage).ASCII())
	}
	return nil
}

func buildMatrix(ctx context.Context, source string, n, warmup int64, timeout time.Duration, retries int, checkpoint string, rec obs.Recorder) (*cluster.Matrix, error) {
	switch source {
	case "paper":
		return cluster.DistanceMatrix(paperdata.Benchmarks, paperdata.RankVectors(paperdata.Table9))
	case "sim":
		suite, err := experiment.RunSuiteCtx(ctx, experiment.Options{
			Instructions: n,
			Warmup:       warmup,
			Foldover:     true,
			Timeout:      timeout,
			Retries:      retries,
			Checkpoint:   checkpoint,
			Recorder:     rec,
		})
		if err != nil {
			return nil, err
		}
		return cluster.DistanceMatrix(suite.Benchmarks, suite.RankRows)
	default:
		return nil, obs.Usagef("unknown source %q", source)
	}
}
