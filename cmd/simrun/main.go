// Command simrun executes one processor simulation: a chosen synthetic
// benchmark on a chosen configuration, printing the full statistics
// report. With -bench all, the benchmarks are evaluated through the
// fault-tolerant runner: -timeout bounds each simulation, -retries
// re-runs failures, and -checkpoint journals finished benchmarks so a
// rerun skips them (restored benchmarks report their cycle count; the
// full statistics are only printed for freshly simulated runs).
//
// Observability: -metrics journals run events to JSONL, -progress
// prints live progress and an end-of-run summary, -debug-addr serves
// expvar and pprof.
//
// Usage:
//
//	simrun [-bench gzip] [-n 100000] [-warmup 30000]
//	       [-config default|all-low|all-high] [-precompute 0]
//	       [-timeout 0] [-retries 0] [-checkpoint simrun.jsonl]
//	       [-workers 4] [-shard-dir campaign/] [-shard-sync]
//	       [-sample uniform] [-sample-region 1000] [-sample-frac 0.1]
//	       [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
//
// Sampled mode (-sample, with the -sample-* family) detail-simulates
// only a seeded subset of each benchmark's measured window
// (internal/sampling) and reports the extrapolated cycle count with
// its 95% confidence interval and the detailed-instruction reduction,
// instead of the full statistics report. It is sequential-only and
// mutually exclusive with -precompute (sampling measures the base
// pipeline, not an enhanced one).
//
// Distributed mode (-workers / -shard-dir) evaluates the benchmark
// list through the crash-safe execution layer: several simrun
// processes started with identical flags and the same -shard-dir
// split the benchmarks, survive kills, and resume from the shard
// ledgers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"pbsim/internal/enhance"
	"pbsim/internal/obs"
	"pbsim/internal/pb"
	"pbsim/internal/report"
	"pbsim/internal/runner"
	"pbsim/internal/runner/dist"
	"pbsim/internal/sampling"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func main() {
	os.Exit(obs.Exit(os.Stderr, "simrun", run()))
}

func run() (err error) {
	bench := flag.String("bench", "gzip", "benchmark name (or 'all')")
	n := flag.Int64("n", 100000, "instructions to measure")
	warmup := flag.Int64("warmup", 30000, "instructions to warm up before measuring")
	configSel := flag.String("config", "default", "configuration: default, all-low, or all-high")
	precompute := flag.Int("precompute", 0, "enable instruction precomputation with a table of this many entries")
	timeout := flag.Duration("timeout", 0, "per-simulation timeout (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed simulation")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file; finished benchmarks are skipped on rerun")
	workers := flag.Int("workers", 0, "run the benchmarks through N crash-safe in-process workers (distributed mode)")
	shardDir := flag.String("shard-dir", "", "campaign directory for distributed mode; share it among simrun processes with identical flags to scale out or resume")
	shardSync := flag.Bool("shard-sync", false, "fsync shard ledgers after every commit in distributed mode")
	sampleFlags := sampling.RegisterFlags(flag.CommandLine)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine, "simrun")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	cfg, err := selectConfig(*configSel)
	if err != nil {
		return err
	}
	names := []string{*bench}
	if *bench == "all" {
		names = workload.Names()
	}

	sampleSpec, err := sampleFlags()
	if err != nil {
		return obs.Usagef("%v", err)
	}
	if sampleSpec != nil {
		switch {
		case *precompute > 0:
			return obs.Usagef("-sample measures the base pipeline; it cannot be combined with -precompute")
		case *workers > 0 || *shardDir != "":
			return obs.Usagef("-sample is sequential-only in simrun; distributed sampled campaigns run through pbrank/pbworker manifests")
		case *checkpoint != "":
			return obs.Usagef("-sample runs are cheap by construction and do not checkpoint")
		}
		return runSampled(ctx, names, cfg, *n, *warmup, *sampleSpec)
	}

	if *workers > 0 || *shardDir != "" {
		if *checkpoint != "" {
			return obs.Usagef("-checkpoint is the sequential resume path; distributed mode resumes from -shard-dir itself")
		}
		return runDistributed(ctx, names, cfg, *n, *warmup, *precompute, *configSel,
			*workers, *shardDir, *shardSync, sess.Recorder())
	}

	rcfg := runner.Config{
		Parallelism: 1, // keep reports in benchmark order
		Timeout:     *timeout,
		Retries:     *retries,
		Scope:       "simrun",
		Recorder:    sess.Recorder(),
	}
	fp := fmt.Sprintf("simrun|config=%s|n=%d|warmup=%d|precompute=%d", *configSel, *n, *warmup, *precompute)
	if rec := sess.Recorder(); rec != nil {
		rec.SuiteStarted(fp, 1, len(names))
	}
	if *checkpoint != "" {
		cp, err := runner.OpenCheckpoint(*checkpoint, fp)
		if err != nil {
			return err
		}
		defer obs.FoldClose(&err, cp)
		rcfg.Checkpoint = cp
	}

	// Row i simulates names[i]; restored rows leave stats[i] nil and
	// report only the checkpointed cycle count.
	stats := make([]*sim.Stats, len(names))
	task := func(ctx context.Context, i int) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		s, err := runOne(names[i], cfg, *n, *warmup, *precompute)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", names[i], err)
		}
		stats[i] = &s
		return float64(s.Cycles), nil
	}
	cycles, err := runner.Evaluate(ctx, len(names), task, rcfg)
	if err != nil {
		if runner.Cancelled(err) && *checkpoint != "" {
			return fmt.Errorf("%w (rerun with -checkpoint %s to skip finished benchmarks)", err, *checkpoint)
		}
		return err
	}
	for i, name := range names {
		if stats[i] == nil {
			fmt.Printf("%s: %.0f cycles (restored from checkpoint; rerun without -checkpoint for the full report)\n",
				name, cycles[i])
			continue
		}
		fmt.Println(report.SimStats(name, *stats[i]))
	}
	return nil
}

// runSampled evaluates each benchmark through the region-sampling
// layer and prints the estimate with its quantified error: the
// extrapolated cycle count ± the 95% confidence half-width, the CPI
// estimate, the sampled region count, and the detailed-instruction
// reduction against a full run of the same budgets.
func runSampled(ctx context.Context, names []string, cfg sim.Config, n, warmup int64, spec sampling.Spec) error {
	full := warmup + n
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return err
		}
		w, err := workload.ByName(name)
		if err != nil {
			return err
		}
		gen, err := w.NewGenerator()
		if err != nil {
			return err
		}
		res, err := sampling.Run(cfg, gen, warmup, n, spec)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%s: %.0f ± %.0f cycles (95%% CI), CPI %.4f ± %.4f\n",
			name, res.Cycles, res.CyclesCIHalf, res.CPI, res.CIHalf)
		if res.Census {
			fmt.Printf("  %s estimator: budget covered all %d regions — exact full simulation\n",
				res.Estimator, res.NumRegions)
			continue
		}
		fmt.Printf("  %s estimator: %d/%d regions detailed\n",
			res.Estimator, res.SampledRegions, res.NumRegions)
		fmt.Printf("  detailed %d of %d instructions (%.1fx reduction), functional warming %d (+%d schedule)\n",
			res.DetailedInstructions, full, float64(full)/float64(res.DetailedInstructions),
			res.FunctionalInstructions, res.ScheduleFunctional)
	}
	return nil
}

// runDistributed evaluates the benchmark list through the crash-safe
// distributed layer (internal/runner/dist): each benchmark is one
// claimable unit in a single "simrun" scope. Several simrun processes
// started with identical flags and the same -shard-dir split the
// list between them and survive kills — committed benchmarks are
// never re-simulated, and rerunning with the same flags resumes. The
// campaign fingerprint pins every flag that changes cycle counts AND
// the benchmark list itself (row i means names[i]), so a flag-skewed
// joiner is refused instead of committing mismatched rows.
//
// Benchmarks simulated by this process print the full statistics
// report; rows merged from other workers' shards report their cycle
// count, exactly like checkpoint-restored rows in sequential mode.
func runDistributed(ctx context.Context, names []string, cfg sim.Config, n, warmup int64,
	precompute int, configSel string, workers int, dir string, shardSync bool, rec obs.Recorder) error {
	if workers <= 0 {
		workers = 1
	}
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "simrun-campaign-"); err != nil {
			return err
		}
		defer os.RemoveAll(dir) //pbcheck:ignore errdiscard best-effort cleanup of an ephemeral campaign dir
	}
	fp := fmt.Sprintf("simrun|config=%s|n=%d|warmup=%d|precompute=%d|benchmarks=%s",
		configSel, n, warmup, precompute, strings.Join(names, ","))
	c, err := dist.Create(dir, dist.Manifest{
		Fingerprint: fp,
		Scopes:      []dist.ScopeSpec{{Name: "simrun", Rows: len(names)}},
		Spec: map[string]string{
			"tool":       "simrun",
			"config":     configSel,
			"n":          fmt.Sprint(n),
			"warmup":     fmt.Sprint(warmup),
			"precompute": fmt.Sprint(precompute),
			"benchmarks": strings.Join(names, ","),
		},
	})
	if err != nil {
		return err
	}
	if rec != nil {
		rec.SuiteStarted(fp, 1, len(names))
	}

	// Full statistics for rows this process simulated; a steal can
	// double-execute a row, so the slot is written under a lock (both
	// writers compute identical stats — the simulator is
	// deterministic — but identical bits still need one writer).
	var mu sync.Mutex
	stats := make([]*sim.Stats, len(names))
	task := func(ctx context.Context, _ string, row int) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		s, err := runOne(names[row], cfg, n, warmup, precompute)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", names[row], err)
		}
		mu.Lock()
		stats[row] = &s
		mu.Unlock()
		return float64(s.Cycles), nil
	}

	host, herr := os.Hostname()
	if herr != nil {
		host = "simrun"
	}
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		//pbcheck:ignore leakygo worker goroutines terminate via ctx cancellation inside RunWorker and are joined by the errs receive loop below
		go func(w int) {
			_, err := dist.RunWorker(ctx, dir, task, dist.Config{
				ID:       fmt.Sprintf("%s-%d-w%d", host, os.Getpid(), w),
				Sync:     shardSync,
				Recorder: rec,
			})
			errs <- err
		}(w)
	}
	var firstErr error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		if runner.Cancelled(firstErr) {
			return fmt.Errorf("%w (committed benchmarks are durable; rerun with -shard-dir %s to resume)", firstErr, dir)
		}
		return firstErr
	}
	res, err := c.Merge(rec)
	if err != nil {
		return err
	}
	if !res.Complete() {
		return fmt.Errorf("campaign incomplete: %d benchmarks missing; rerun with -shard-dir %s to resume", len(res.Missing), dir)
	}
	cycles, err := res.Responses("simrun")
	if err != nil {
		return err
	}
	for i, name := range names {
		if stats[i] == nil {
			fmt.Printf("%s: %.0f cycles (merged from another worker's shard ledger)\n", name, cycles[i])
			continue
		}
		fmt.Println(report.SimStats(name, *stats[i]))
	}
	return nil
}

func selectConfig(sel string) (sim.Config, error) {
	switch strings.ToLower(sel) {
	case "default":
		return sim.Default(), nil
	case "all-low", "all-high":
		lv := pb.Low
		if sel == "all-high" {
			lv = pb.High
		}
		levels := make([]pb.Level, 43)
		for i := range levels {
			levels[i] = lv
		}
		return sim.ConfigForLevels(levels), nil
	default:
		return sim.Config{}, obs.Usagef("unknown config %q", sel)
	}
}

func runOne(name string, cfg sim.Config, n, warmup int64, precompute int) (sim.Stats, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return sim.Stats{}, err
	}
	gen, err := w.NewGenerator()
	if err != nil {
		return sim.Stats{}, err
	}
	var shortcut sim.ComputeShortcut
	if precompute > 0 {
		freq, err := enhance.Profile(w.Params, warmup+n)
		if err != nil {
			return sim.Stats{}, err
		}
		table, err := enhance.NewPrecomputation(freq, precompute)
		if err != nil {
			return sim.Stats{}, err
		}
		shortcut = table
	}
	cpu, err := sim.New(cfg, gen, shortcut)
	if err != nil {
		return sim.Stats{}, err
	}
	cpu.PrewarmMemory()
	return cpu.RunWithWarmup(warmup, n)
}
