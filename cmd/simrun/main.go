// Command simrun executes one processor simulation: a chosen synthetic
// benchmark on a chosen configuration, printing the full statistics
// report.
//
// Usage:
//
//	simrun [-bench gzip] [-n 100000] [-warmup 30000] [-config default|all-low|all-high] [-precompute 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pbsim/internal/enhance"
	"pbsim/internal/pb"
	"pbsim/internal/report"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark name (or 'all')")
	n := flag.Int64("n", 100000, "instructions to measure")
	warmup := flag.Int64("warmup", 30000, "instructions to warm up before measuring")
	configSel := flag.String("config", "default", "configuration: default, all-low, or all-high")
	precompute := flag.Int("precompute", 0, "enable instruction precomputation with a table of this many entries")
	flag.Parse()

	cfg, err := selectConfig(*configSel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simrun: %v\n", err)
		os.Exit(1)
	}
	names := []string{*bench}
	if *bench == "all" {
		names = workload.Names()
	}
	for _, name := range names {
		if err := runOne(name, cfg, *n, *warmup, *precompute); err != nil {
			fmt.Fprintf(os.Stderr, "simrun: %v\n", err)
			os.Exit(1)
		}
	}
}

func selectConfig(sel string) (sim.Config, error) {
	switch strings.ToLower(sel) {
	case "default":
		return sim.Default(), nil
	case "all-low", "all-high":
		lv := pb.Low
		if sel == "all-high" {
			lv = pb.High
		}
		levels := make([]pb.Level, 43)
		for i := range levels {
			levels[i] = lv
		}
		return sim.ConfigForLevels(levels), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown config %q", sel)
	}
}

func runOne(name string, cfg sim.Config, n, warmup int64, precompute int) error {
	w, err := workload.ByName(name)
	if err != nil {
		return err
	}
	gen, err := w.NewGenerator()
	if err != nil {
		return err
	}
	var shortcut sim.ComputeShortcut
	if precompute > 0 {
		freq, err := enhance.Profile(w.Params, warmup+n)
		if err != nil {
			return err
		}
		table, err := enhance.NewPrecomputation(freq, precompute)
		if err != nil {
			return err
		}
		shortcut = table
	}
	cpu, err := sim.New(cfg, gen, shortcut)
	if err != nil {
		return err
	}
	cpu.PrewarmMemory()
	stats, err := cpu.RunWithWarmup(warmup, n)
	if err != nil {
		return err
	}
	fmt.Println(report.SimStats(name, stats))
	return nil
}
