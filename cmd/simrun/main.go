// Command simrun executes one processor simulation: a chosen synthetic
// benchmark on a chosen configuration, printing the full statistics
// report. With -bench all, the benchmarks are evaluated through the
// fault-tolerant runner: -timeout bounds each simulation, -retries
// re-runs failures, and -checkpoint journals finished benchmarks so a
// rerun skips them (restored benchmarks report their cycle count; the
// full statistics are only printed for freshly simulated runs).
//
// Observability: -metrics journals run events to JSONL, -progress
// prints live progress and an end-of-run summary, -debug-addr serves
// expvar and pprof.
//
// Usage:
//
//	simrun [-bench gzip] [-n 100000] [-warmup 30000]
//	       [-config default|all-low|all-high] [-precompute 0]
//	       [-timeout 0] [-retries 0] [-checkpoint simrun.jsonl]
//	       [-metrics run.jsonl] [-progress] [-debug-addr localhost:6060]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pbsim/internal/enhance"
	"pbsim/internal/obs"
	"pbsim/internal/pb"
	"pbsim/internal/report"
	"pbsim/internal/runner"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "simrun: error: %v\n", err)
		os.Exit(1)
	}
}

func run() (err error) {
	bench := flag.String("bench", "gzip", "benchmark name (or 'all')")
	n := flag.Int64("n", 100000, "instructions to measure")
	warmup := flag.Int64("warmup", 30000, "instructions to warm up before measuring")
	configSel := flag.String("config", "default", "configuration: default, all-low, or all-high")
	precompute := flag.Int("precompute", 0, "enable instruction precomputation with a table of this many entries")
	timeout := flag.Duration("timeout", 0, "per-simulation timeout (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed simulation")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file; finished benchmarks are skipped on rerun")
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine, "simrun")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, sess)

	cfg, err := selectConfig(*configSel)
	if err != nil {
		return err
	}
	names := []string{*bench}
	if *bench == "all" {
		names = workload.Names()
	}

	rcfg := runner.Config{
		Parallelism: 1, // keep reports in benchmark order
		Timeout:     *timeout,
		Retries:     *retries,
		Scope:       "simrun",
		Recorder:    sess.Recorder(),
	}
	fp := fmt.Sprintf("simrun|config=%s|n=%d|warmup=%d|precompute=%d", *configSel, *n, *warmup, *precompute)
	if rec := sess.Recorder(); rec != nil {
		rec.SuiteStarted(fp, 1, len(names))
	}
	if *checkpoint != "" {
		cp, err := runner.OpenCheckpoint(*checkpoint, fp)
		if err != nil {
			return err
		}
		defer obs.FoldClose(&err, cp)
		rcfg.Checkpoint = cp
	}

	// Row i simulates names[i]; restored rows leave stats[i] nil and
	// report only the checkpointed cycle count.
	stats := make([]*sim.Stats, len(names))
	task := func(ctx context.Context, i int) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		s, err := runOne(names[i], cfg, *n, *warmup, *precompute)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", names[i], err)
		}
		stats[i] = &s
		return float64(s.Cycles), nil
	}
	cycles, err := runner.Evaluate(ctx, len(names), task, rcfg)
	if err != nil {
		if runner.Cancelled(err) && *checkpoint != "" {
			return fmt.Errorf("%w (rerun with -checkpoint %s to skip finished benchmarks)", err, *checkpoint)
		}
		return err
	}
	for i, name := range names {
		if stats[i] == nil {
			fmt.Printf("%s: %.0f cycles (restored from checkpoint; rerun without -checkpoint for the full report)\n",
				name, cycles[i])
			continue
		}
		fmt.Println(report.SimStats(name, *stats[i]))
	}
	return nil
}

func selectConfig(sel string) (sim.Config, error) {
	switch strings.ToLower(sel) {
	case "default":
		return sim.Default(), nil
	case "all-low", "all-high":
		lv := pb.Low
		if sel == "all-high" {
			lv = pb.High
		}
		levels := make([]pb.Level, 43)
		for i := range levels {
			levels[i] = lv
		}
		return sim.ConfigForLevels(levels), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown config %q", sel)
	}
}

func runOne(name string, cfg sim.Config, n, warmup int64, precompute int) (sim.Stats, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return sim.Stats{}, err
	}
	gen, err := w.NewGenerator()
	if err != nil {
		return sim.Stats{}, err
	}
	var shortcut sim.ComputeShortcut
	if precompute > 0 {
		freq, err := enhance.Profile(w.Params, warmup+n)
		if err != nil {
			return sim.Stats{}, err
		}
		table, err := enhance.NewPrecomputation(freq, precompute)
		if err != nil {
			return sim.Stats{}, err
		}
		shortcut = table
	}
	cpu, err := sim.New(cfg, gen, shortcut)
	if err != nil {
		return sim.Stats{}, err
	}
	cpu.PrewarmMemory()
	return cpu.RunWithWarmup(warmup, n)
}
