module pbsim

go 1.22
