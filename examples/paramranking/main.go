// Paramranking: the paper's Section 4.1 workflow on the simulator.
//
// A Plackett-Burman screen over all 41 processor parameters (X=44
// foldover design, 88 configurations) identifies the critical
// parameters for a three-benchmark suite, then a full-factorial ANOVA
// over the top parameters quantifies their interactions -- exactly the
// two-stage recipe the paper recommends before choosing simulation
// parameter values.
//
// Run with:
//
//	go run ./examples/paramranking
package main

import (
	"fmt"

	"pbsim/internal/experiment"
	"pbsim/internal/methodology"
	"pbsim/internal/pb"
	"pbsim/internal/report"
	"pbsim/internal/workload"
)

func main() {
	const instructions, warmup = 20000, 10000
	var ws []workload.Workload
	for _, name := range []string{"gzip", "mcf", "twolf"} {
		w, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		ws = append(ws, w)
	}

	// Step 1: the PB screen.
	suite, err := experiment.RunSuite(experiment.Options{
		Instructions: instructions,
		Warmup:       warmup,
		Foldover:     true,
		Workloads:    ws,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(report.RankTable(suite, "PB screen over 41 processor parameters (3 benchmarks)"))

	screening := methodology.ScreenFromSuite(suite, 4)
	fmt.Println("Critical parameters (by sum of ranks):")
	for i, f := range screening.Critical {
		fmt.Printf("  %d. %s (sum %d)\n", i+1, suite.Factors[f].Name, suite.Sums[f])
	}

	// Step 3: full-factorial sensitivity analysis over the critical
	// parameters for one benchmark, non-critical parameters held high.
	resp, respErr := experiment.Response(ws[0], warmup, instructions, nil).Infallible()
	sens, err := methodology.SensitivityAnalysis(suite.Design.Columns, screening.Critical, resp, pb.High)
	if err != nil {
		panic(err)
	}
	if err := respErr(); err != nil {
		panic(err)
	}
	fmt.Printf("\nFull 2^%d factorial ANOVA over the critical parameters (%s):\n",
		len(screening.Critical), ws[0].Name)
	names := make([]string, suite.Design.Columns)
	for i, f := range suite.Factors {
		names[i] = f.Name
	}
	shown := 0
	for _, term := range sens.ANOVA.Terms {
		if shown >= 8 {
			break
		}
		label := ""
		for k, fi := range term.Factors {
			if k > 0 {
				label += " x "
			}
			label += names[sens.Factors[fi]]
		}
		fmt.Printf("  %-60s %6.2f%% of variation\n", label, term.Percent)
		shown++
	}
	fmt.Printf("\nInteractions explain %.2f%% of the variation -- the paper's\n", sens.ANOVA.InteractionShare())
	fmt.Println("justification for trusting PB main effects (Section 2.2).")
}
