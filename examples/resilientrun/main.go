// Example resilientrun demonstrates the fault-tolerant experiment
// runner on a small Plackett-Burman suite. It runs the same
// three-benchmark experiment twice:
//
//  1. Under heavy injected faults — seeded transient failures on ~15%
//     of attempts, a row that panics on its first attempt, a row that
//     twice "dies" at the commit boundary (the CrashRows injector the
//     distributed chaos harness also uses), and a row whose first
//     attempt exceeds the per-row timeout — and shows the suite
//     completing anyway via retries with capped backoff.
//
//  2. Interrupted mid-suite (a simulated crash after a fixed number of
//     row evaluations) with a JSONL checkpoint, then resumed: the
//     resumed run re-simulates only the missing rows and reproduces
//     the identical sum-of-ranks ordering.
//
// Both phases run under the observability layer (internal/obs): the
// fault-injected suite aggregates retry/panic/timeout counts through
// an obs.Metrics recorder, and the resumed suite additionally
// journals every event to a metrics JSONL whose resumed-vs-simulated
// accounting is verified against the checkpoint — so this example
// doubles as an integration smoke test of the obs layer.
//
// Run it with:
//
//	go run ./examples/resilientrun
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"pbsim/internal/obs"
	"pbsim/internal/pb"
	"pbsim/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "resilientrun: error: %v\n", err)
		os.Exit(1)
	}
}

// The suite: five factors, three synthetic "benchmarks" whose
// deterministic responses weight the factors differently.
func suite() ([]pb.Factor, []string, []pb.FallibleResponse) {
	factors := []pb.Factor{
		{Name: "ROB Entries", Low: "8", High: "64"},
		{Name: "L2 Cache Size", Low: "256 KB", High: "8 MB"},
		{Name: "Memory Latency", Low: "50", High: "200"},
		{Name: "Branch Predictor", Low: "2K", High: "16K"},
		{Name: "Int ALUs", Low: "1", High: "4"},
	}
	benchmarks := []string{"synth-int", "synth-mem", "synth-fp"}
	weights := [][]float64{
		{40, 5, 3, 25, 30},
		{8, 50, 45, 4, 2},
		{30, 12, 10, 6, 20},
	}
	responses := make([]pb.FallibleResponse, len(benchmarks))
	for bi := range benchmarks {
		w := weights[bi]
		//pbcheck:ignore ctxflow the synthetic response is pure arithmetic with nothing cancellable; ctx is unused by design
		responses[bi] = func(_ context.Context, levels []pb.Level) (float64, error) {
			cycles := 10000.0
			for j, lv := range levels {
				if j < len(w) {
					cycles -= w[j] * float64(lv) * math.Sqrt(float64(j)+1)
				}
			}
			return cycles, nil
		}
	}
	return factors, benchmarks, responses
}

func run() (err error) {
	factors, benchmarks, responses := suite()

	fmt.Println("=== Phase 1: suite under injected faults ===")
	faults := &runner.Faults{
		Seed:      2026,
		FailProb:  0.15,                                             // seeded transient failures
		PanicRows: map[int]int{3: 1},                                // row 3 panics once
		CrashRows: map[int]int{7: 2},                                // row 7 dies twice at the commit boundary
		SlowRows:  map[int]time.Duration{5: 300 * time.Millisecond}, // row 5's first attempt hangs
	}
	metrics := obs.NewMetrics()
	opts := pb.Options{Foldover: true}
	opts.Runner = runner.Config{
		Retries:    5,
		Timeout:    100 * time.Millisecond, // row 5's first attempt times out
		Backoff:    5 * time.Millisecond,
		BackoffCap: 50 * time.Millisecond,
		Wrap:       faults.Wrap,
		Recorder:   metrics,
		OnRetry: func(scope string, row, attempt int, delay time.Duration, err error) {
			fmt.Printf("  retry %s row %d (attempt %d, backoff %v): %v\n", scope, row, attempt, delay, err)
		},
	}
	faulted, err := pb.RunSuiteCtx(context.Background(), factors, benchmarks, responses, opts)
	if err != nil {
		return fmt.Errorf("faulted suite: %w", err)
	}
	fmt.Printf("suite completed despite %d injected-fault attempts\n", faults.Injected())
	fmt.Printf("the metrics agree: %d attempts, %d retries, %d panics, %d timeouts, peak %d workers\n\n",
		metrics.Attempts.Value(), metrics.Retries.Value(), metrics.Panics.Value(),
		metrics.Timeouts.Value(), metrics.Workers.Peak())

	fmt.Println("=== Phase 2: crash mid-suite, then checkpoint resume ===")
	dir, err := os.MkdirTemp("", "resilientrun")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //pbcheck:ignore errdiscard best-effort temp-dir cleanup; nothing actionable on failure
	path := filepath.Join(dir, "suite.jsonl")

	// The "crashing" first run: the response budget dies after 20 rows.
	cp, err := runner.OpenCheckpoint(path, "example")
	if err != nil {
		return err
	}
	var budget atomic.Int64
	budget.Store(20)
	crashing := make([]pb.FallibleResponse, len(responses))
	for i, resp := range responses {
		crashing[i] = func(ctx context.Context, levels []pb.Level) (float64, error) {
			if budget.Add(-1) < 0 {
				return 0, errors.New("simulated crash")
			}
			return resp(ctx, levels)
		}
	}
	copts := pb.Options{Foldover: true}
	copts.Runner.Checkpoint = cp
	if _, err := pb.RunSuiteCtx(context.Background(), factors, benchmarks, crashing, copts); err == nil {
		return errors.New("crashing run unexpectedly succeeded")
	} else {
		fmt.Printf("first run died as planned: %v\n", err)
	}
	if err := cp.Close(); err != nil {
		return err
	}

	// The resumed run: same checkpoint file, healthy responses, and
	// the full observability stack — aggregate metrics plus a JSONL
	// event journal keyed by the experiment fingerprint.
	re, err := runner.OpenCheckpoint(path, "example")
	if err != nil {
		return err
	}
	defer obs.FoldClose(&err, re)
	var simulated atomic.Int64
	counting := make([]pb.FallibleResponse, len(responses))
	for i, resp := range responses {
		counting[i] = func(ctx context.Context, levels []pb.Level) (float64, error) {
			simulated.Add(1)
			return resp(ctx, levels)
		}
	}
	metricsPath := filepath.Join(dir, "metrics.jsonl")
	sink, err := obs.OpenJSONL(metricsPath)
	if err != nil {
		return err
	}
	rmetrics := obs.NewMetrics()
	rec := obs.Multi(rmetrics, sink)
	rec.SuiteStarted("example", len(benchmarks), faulted.Design.Runs())
	ropts := pb.Options{Foldover: true}
	ropts.Runner.Checkpoint = re
	ropts.Runner.Recorder = rec
	resumed, err := pb.RunSuiteCtx(context.Background(), factors, benchmarks, counting, ropts)
	if err != nil {
		return fmt.Errorf("resumed suite: %w", err)
	}
	total := resumed.Design.Runs() * len(benchmarks)
	fmt.Printf("resume restored %d rows from the checkpoint and simulated only %d of %d\n",
		re.Loaded(), simulated.Load(), total)

	// The metrics must tell the same story as the checkpoint and the
	// counting wrapper — this is the obs layer's integration check.
	summary := rmetrics.Summary("resilientrun")
	if summary.RowsResumed != int64(re.Loaded()) || summary.RowsSimulated != simulated.Load() {
		return fmt.Errorf("metrics disagree with ground truth: %d resumed / %d simulated vs %d / %d",
			summary.RowsResumed, summary.RowsSimulated, re.Loaded(), simulated.Load())
	}
	sink.WriteSummary(summary)
	if err := sink.Close(); err != nil {
		return err
	}
	hits, finished, err := countEvents(metricsPath)
	if err != nil {
		return err
	}
	if hits != int(summary.RowsResumed) || finished != int(summary.RowsSimulated) {
		return fmt.Errorf("metrics JSONL disagrees: %d checkpoint_hit / %d row_finished events vs %d / %d",
			hits, finished, summary.RowsResumed, summary.RowsSimulated)
	}
	fmt.Printf("metrics JSONL agrees: %d checkpoint_hit + %d row_finished events\n\n", hits, finished)
	fmt.Print(summary.Table())

	// The resumed ordering must equal the faulted (but complete) run's.
	fmt.Println("\nsum-of-ranks ordering (resumed run):")
	for pos, f := range resumed.Order {
		same := "=="
		if resumed.Order[pos] != faulted.Order[pos] {
			same = "!=" // never happens: both runs are exact
		}
		fmt.Printf("  %d. %-18s sum %2d  (%s fault-injected run)\n",
			pos+1, resumed.Factors[f].Name, resumed.Sums[f], same)
	}
	return nil
}

// countEvents reads a metrics JSONL back and tallies the two row
// outcomes the resume accounting cares about.
func countEvents(path string) (checkpointHits, rowsFinished int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer obs.FoldClose(&err, f)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return 0, 0, fmt.Errorf("bad metrics line %q: %w", sc.Text(), err)
		}
		switch ev.T {
		case "checkpoint_hit":
			checkpointHits++
		case "row_finished":
			rowsFinished++
		}
	}
	return checkpointHits, rowsFinished, sc.Err()
}
