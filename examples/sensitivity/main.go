// Sensitivity: the paper's Section 2.1 argument, demonstrated on the
// simulator rather than on a toy formula.
//
// A one-at-a-time sensitivity analysis measures each parameter's
// effect at a single base point. With the base set to all-high values
// — a natural "generous machine" choice — vpr-Route's 2 MB working
// set fits entirely inside the 8 MB L2, so flipping the main-memory
// latency appears to cost almost nothing: the interaction with L2
// size masks it. The Plackett-Burman design varies all parameters
// simultaneously and averages each effect over both levels of every
// other parameter, so the masking disappears.
//
// Run with:
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"sort"

	"pbsim/internal/experiment"
	"pbsim/internal/pb"
	"pbsim/internal/sim"
	"pbsim/internal/stats"
	"pbsim/internal/workload"
)

func main() {
	const instructions, warmup = 20000, 10000
	w, err := workload.ByName("vpr-Route")
	if err != nil {
		panic(err)
	}
	resp, respErr := experiment.Response(w, warmup, instructions, nil).Infallible()
	factors := []string{}
	for _, f := range experimentFactors() {
		factors = append(factors, f.Name)
	}

	// One-at-a-time from the all-high base: N+1 = 42 simulations.
	base := make([]int8, len(factors))
	for i := range base {
		base[i] = +1
	}
	oat, err := stats.OneAtATime(base, func(levels []int8) float64 {
		lv := make([]pb.Level, len(levels))
		for i, l := range levels {
			lv[i] = pb.Level(l)
		}
		return resp(lv)
	})
	if err != nil {
		panic(err)
	}

	// The PB foldover design: 88 simulations, effects averaged over
	// the whole parameter space.
	pbRes, err := pb.Run(experimentFactors(), resp, pb.Options{Foldover: true})
	if err != nil {
		panic(err)
	}
	if err := respErr(); err != nil {
		panic(err)
	}

	// Rank both analyses and compare where memory latency lands.
	oatRanks := rankByMagnitude(oat.Deltas)
	idx := indexOf(factors, "Memory Latency First")
	idxL2 := indexOf(factors, "L2 Cache Size")

	fmt.Printf("vpr-Route (2 MB working set), base = all-high (8 MB L2):\n\n")
	fmt.Printf("%-28s %22s %22s\n", "parameter", "one-at-a-time rank", "Plackett-Burman rank")
	for _, name := range []string{"Memory Latency First", "L2 Cache Size", "L2 Cache Latency", "Reorder Buffer Entries"} {
		i := indexOf(factors, name)
		fmt.Printf("%-28s %22d %22d\n", name, oatRanks[i], pbRes.Ranks[i])
	}
	fmt.Printf("\nOne-at-a-time delta for memory latency: %+.0f cycles (of a %.0f-cycle base)\n",
		oat.Deltas[idx], oat.Base)
	fmt.Printf("PB effect magnitude for memory latency:  %.0f (rank %d of %d)\n",
		abs(pbRes.Effects[idx]), pbRes.Ranks[idx], len(factors))
	fmt.Println("\nAt the all-high base the working set fits the 8 MB L2, so the")
	fmt.Println("one-at-a-time design cannot see that memory latency dominates")
	fmt.Println("whenever the L2 is small: the L2-size interaction masks it.")
	fmt.Printf("(The same masking hides L2 size itself: one-at-a-time rank %d vs PB rank %d.)\n",
		oatRanks[idxL2], pbRes.Ranks[idxL2])
}

// experimentFactors returns the simulator's 41 PB factors.
func experimentFactors() []pb.Factor {
	return sim.Factors()
}

func rankByMagnitude(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return abs(vals[idx[a]]) > abs(vals[idx[b]])
	})
	ranks := make([]int, len(vals))
	for r, i := range idx {
		ranks[i] = r + 1
	}
	return ranks
}

func indexOf(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	panic("unknown factor " + want)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
