// Enhancement: the paper's Section 4.3 post-simulation analysis.
//
// Instruction precomputation (a 128-entry table of the most frequent
// redundant computations, filled by an offline profiling pass and
// never updated) is added to the simulated processor. Instead of
// reporting only the speedup, a Plackett-Burman experiment before and
// after the enhancement shows *what the enhancement did to the
// processor*: which parameters gained or lost significance.
//
// Run with:
//
//	go run ./examples/enhancement
package main

import (
	"fmt"

	"pbsim/internal/enhance"
	"pbsim/internal/experiment"
	"pbsim/internal/methodology"
	"pbsim/internal/report"
	"pbsim/internal/sim"
	"pbsim/internal/workload"
)

func main() {
	const instructions, warmup = 20000, 10000
	var ws []workload.Workload
	for _, name := range []string{"gzip", "bzip2", "parser"} {
		w, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		ws = append(ws, w)
	}

	// First, the conventional single-number view: the speedup.
	for _, w := range ws {
		base := runOnce(w, nil)
		freq, err := enhance.Profile(w.Params, warmup+instructions)
		if err != nil {
			panic(err)
		}
		table, err := enhance.NewPrecomputation(freq, 128)
		if err != nil {
			panic(err)
		}
		enh := runOnce(w, table)
		fmt.Printf("%-8s base %7d cycles, precomputed %7d cycles, speedup %.3fx (%d table hits)\n",
			w.Name, base.Cycles, enh.Cycles, float64(base.Cycles)/float64(enh.Cycles), enh.PrecompHits)
	}

	// Then the paper's whole-picture view: PB ranks before and after.
	opts := experiment.Options{
		Instructions: instructions,
		Warmup:       warmup,
		Foldover:     true,
		Workloads:    ws,
	}
	before, err := experiment.RunSuite(opts)
	if err != nil {
		panic(err)
	}
	opts.Shortcut = func(w workload.Workload) (sim.ComputeShortcut, error) {
		freq, err := enhance.Profile(w.Params, warmup+instructions)
		if err != nil {
			return nil, err
		}
		return enhance.NewPrecomputation(freq, 128)
	}
	after, err := experiment.RunSuite(opts)
	if err != nil {
		panic(err)
	}
	shifts, err := methodology.CompareEnhancement(before, after)
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Println(report.ShiftTable(shifts[:12], "Top parameters: significance before vs after precomputation"))
	big, err := methodology.BiggestShift(shifts, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Biggest mover among the significant parameters: %s (%+d)\n", big.Factor.Name, big.Shift)
	fmt.Println("(The paper observes the integer-ALU parameter losing significance,")
	fmt.Println("since precomputation removes work precisely from the integer ALUs.)")
}

func runOnce(w workload.Workload, shortcut sim.ComputeShortcut) sim.Stats {
	gen, err := w.NewGenerator()
	if err != nil {
		panic(err)
	}
	cpu, err := sim.New(sim.Default(), gen, shortcut)
	if err != nil {
		panic(err)
	}
	cpu.PrewarmMemory()
	stats, err := cpu.RunWithWarmup(10000, 20000)
	if err != nil {
		panic(err)
	}
	return stats
}
