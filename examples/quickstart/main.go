// Quickstart: screen the factors of any measurable system with a
// Plackett-Burman design in a few lines.
//
// The "system" here is a closed-form model of a tiny web service whose
// latency depends on a handful of two-level configuration choices,
// some of which matter a lot, some barely, and one pair of which
// interacts. The PB design finds the important ones in 12 runs instead
// of the 2^7 = 128 a full factorial would need.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pbsim/internal/pb"
)

func main() {
	factors := []pb.Factor{
		{Name: "CacheEnabled", Low: "off", High: "on"},
		{Name: "PoolSize", Low: "4", High: "64"},
		{Name: "Compression", Low: "off", High: "on"},
		{Name: "BatchWrites", Low: "off", High: "on"},
		{Name: "TLSResume", Low: "off", High: "on"},
		{Name: "LogLevel", Low: "debug", High: "error"},
		{Name: "NUMAPinning", Low: "off", High: "on"},
	}

	// Latency model: the cache dominates, the pool matters, compression
	// helps a little, and batch writes only pay off when the pool is
	// large (an interaction the foldover protects the main effects
	// from). Logging and NUMA pinning are noise-level.
	latency := func(l []pb.Level) float64 {
		ms := 100.0
		ms -= 30 * float64(l[0])                // cache
		ms -= 12 * float64(l[1])                // pool
		ms -= 4 * float64(l[2])                 // compression
		ms -= 3 * float64(l[1]) * float64(l[3]) // batch x pool interaction
		ms -= 0.3 * float64(l[5])
		ms -= 0.2 * float64(l[6])
		return ms
	}

	result, err := pb.Run(factors, latency, pb.Options{Foldover: true})
	if err != nil {
		panic(err)
	}

	fmt.Printf("Design: X=%d, %d runs (foldover), %d factor columns\n\n",
		result.Design.X, result.Design.Runs(), result.Design.Columns)
	fmt.Printf("%-14s %10s %6s\n", "factor", "effect", "rank")
	for i, f := range result.Factors {
		fmt.Printf("%-14s %10.1f %6d\n", f.Name, result.Effects[i], result.Ranks[i])
	}
	fmt.Println("\nRanks 1-3 should be CacheEnabled, PoolSize, Compression:")
	for i, f := range result.Factors {
		if result.Ranks[i] <= 3 {
			fmt.Printf("  #%d %s\n", result.Ranks[i], f.Name)
		}
	}
	fmt.Println("\nNote the BatchWrites main effect reads ~0: its whole influence is")
	fmt.Println("the interaction with PoolSize, which the foldover keeps out of the")
	fmt.Println("main-effect estimates (run a full factorial on the survivors to see it).")
}
