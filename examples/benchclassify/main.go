// Benchclassify: the paper's Section 4.2 benchmark-classification
// method on the published data.
//
// Each benchmark is a 43-element vector of parameter ranks (Table 9);
// Euclidean distance between vectors measures how similarly two
// benchmarks stress the processor; thresholding at sqrt(4000)
// reproduces the paper's Table 11 groups; and the medoid of each group
// is the representative to simulate when trimming a redundant suite.
//
// Run with:
//
//	go run ./examples/benchclassify
package main

import (
	"fmt"

	"pbsim/internal/cluster"
	"pbsim/internal/paperdata"
	"pbsim/internal/report"
)

func main() {
	m, err := cluster.DistanceMatrix(paperdata.Benchmarks, paperdata.RankVectors(paperdata.Table9))
	if err != nil {
		panic(err)
	}
	fmt.Println(report.DistanceTable(m, "Table 10 (recomputed from the published Table 9 ranks)"))

	groups := cluster.ThresholdGroups(m, paperdata.Threshold)
	fmt.Println(report.GroupTable(cluster.GroupNames(m, groups), paperdata.Threshold))

	reps := cluster.Representatives(m, groups)
	fmt.Println("Representative benchmark per group (simulate these instead of all 13):")
	for gi, r := range reps {
		names := cluster.GroupNames(m, groups)[gi]
		fmt.Printf("  %-28v -> %s\n", names, m.Names[r])
	}

	fmt.Println("\nSingle-linkage dendrogram (threshold-free view of the same structure):")
	fmt.Println(cluster.Agglomerate(m, cluster.SingleLinkage).ASCII())
}
